//! `strudel client` — query a running refinement service.

use strudel_core::metrics::HistogramSnapshot;
use strudel_core::prelude::format_sigma;
use strudel_core::sigma::SigmaSpec;
use strudel_core::wire::WireRefinement;
use strudel_rules::prelude::Ratio;
use strudel_server::prelude::{
    Client, ClientError, ClientOptions, EngineKind, FramingMode, Json, Response, Router,
    RouterOptions, SolveOp, SolveRequest, Source,
};
use strudel_server::protocol::refinement_from_json;
use strudel_server::trace::histogram_from_json;

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;
use crate::io::{load_graph, views_of};
use crate::spec::{parse_sigma_spec, parse_time_limit};

/// Argument specification of `client`.
pub const SPEC: ArgSpec = ArgSpec {
    options: &[
        "addr",
        "cluster",
        "sort",
        "rule",
        "engine",
        "k",
        "theta",
        "step",
        "max-k",
        "time-limit",
        "tenant",
        "framing",
    ],
    flags: &["raw", "slow"],
    min_positional: 1,
    max_positional: 2,
};

/// Usage text of `client`.
pub const USAGE: &str =
    "strudel client <refine|highest-theta|lowest-k|batch|status|trace|shutdown> [FILE]
               [--addr HOST:PORT | --cluster HOST:PORT,HOST:PORT,…] [--sort IRI]
               [--rule SPEC] [--engine hybrid|ilp|greedy] [--k N] [--theta X]
               [--step X] [--max-k N] [--time-limit SECS] [--tenant NAME]
               [--framing bin|json|auto] [--raw] [--slow]
  Sends one request to a running 'strudel serve' (default --addr 127.0.0.1:7464).
  Solve operations load FILE, build its signature view locally, and ship the view;
  repeated identical requests are answered from the server's cache. 'batch' reads
  FILE as one JSON request object per line and ships them all in a single batch
  envelope (one line each way; responses in request order, elements fail
  independently). --raw prints the verbatim response line(s) instead of a report.
  --cluster lists every shard of a 'serve --shard i/n' cluster in shard order:
  solve requests are routed to the shard owning their key, batches are split
  into concurrent per-shard sub-batches, 'status' prints a per-shard table with
  aggregate totals, and 'shutdown' stops every shard. A shard entry may name
  replication standbys after '+' (--cluster a:1+a2:1,b:1+b2:1): when a shard's
  primary is unreachable the router retries with jittered backoff, then fails
  over to its standbys in order, adopting a promoted follower's replication
  epoch so a resurrected old leader is refused instead of serving stale.
  --tenant NAME tags solve requests with a tenant id (a server started with
  'serve --tenants' meters each tenant's cache share, admission rate, and
  compute-pool share; unset rides the unlimited 'default' tenant). An
  over-limit request gets a structured over_quota error naming the tenant
  and a retry_after_ms hint. --framing picks the wire framing: 'json' is the
  line-delimited default, 'bin' negotiates the length-prefixed bin1 framing
  (failing if the server refuses), and 'auto' tries bin1 but falls back to
  json. Responses are byte-identical either way; unset defers to the
  STRUDEL_FRAMING environment variable. 'trace' dumps the server's flight
  recorder — the per-request lifecycle spans 'serve --trace-sample' /
  '--trace-slow-ms' record — as one JSON object per line: --slow keeps only
  spans the slow-request log promoted, and --tenant filters to one tenant's
  spans. When tracing is on, 'status' renders the observe block: per-stage
  latency histograms (decode, admission, cache, solve, flush, total) and
  the recorder's depth/dropped gauges; the cluster status table adds a
  per-shard and merged total-latency p99 column.";

/// Runs the command.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_args(args, &SPEC)?;
    let op_text = parsed.positional(0).expect("spec requires one positional");
    if let Some(cluster) = parsed.option("cluster") {
        if parsed.option("addr").is_some() {
            return Err(CliError::Usage(
                "--addr and --cluster are mutually exclusive".to_owned(),
            ));
        }
        return run_cluster(op_text, cluster, &parsed);
    }
    let addr = parsed.option("addr").unwrap_or("127.0.0.1:7464");
    let options = ClientOptions {
        framing: framing_option(&parsed)?,
        ..ClientOptions::default()
    };
    let mut client = Client::connect_with(addr, options).map_err(client_error)?;

    let response = match op_text {
        "status" => client.status().map_err(client_error)?,
        "shutdown" => client.shutdown().map_err(client_error)?,
        "batch" => return run_batch(&mut client, &parsed),
        "trace" => {
            let response = client
                .trace(parsed.has_flag("slow"), parsed.option("tenant"))
                .map_err(client_error)?;
            if parsed.has_flag("raw") {
                return Ok(response.raw.clone());
            }
            return render_trace(&response);
        }
        "refine" | "highest-theta" | "lowest-k" => {
            let op = match op_text {
                "refine" => SolveOp::Refine,
                "highest-theta" => SolveOp::HighestTheta,
                _ => SolveOp::LowestK,
            };
            let request = build_solve_request(op, &parsed)?;
            client.solve(&request).map_err(client_error)?
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown client operation '{other}'; expected refine, highest-theta, \
                 lowest-k, batch, status, trace, or shutdown"
            )))
        }
    };

    if parsed.has_flag("raw") {
        return Ok(response.raw.clone());
    }
    render_response(op_text, &response)
}

/// Dispatches a `--cluster` invocation through the shard [`Router`].
fn run_cluster(
    op_text: &str,
    cluster: &str,
    parsed: &crate::args::ParsedArgs,
) -> Result<String, CliError> {
    let addrs: Vec<&str> = cluster
        .split(',')
        .map(str::trim)
        .filter(|addr| !addr.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(CliError::Usage(
            "--cluster needs a comma-separated list of shard addresses".to_owned(),
        ));
    }
    let options = RouterOptions {
        client: ClientOptions {
            framing: framing_option(parsed)?,
            ..ClientOptions::default()
        },
        ..RouterOptions::default()
    };
    let mut router = Router::connect_with(&addrs, options).map_err(client_error)?;
    match op_text {
        "status" => render_cluster_status(&mut router, parsed.has_flag("raw")),
        "trace" => {
            let outcomes = router.trace_all(parsed.has_flag("slow"), parsed.option("tenant"));
            let mut out = String::new();
            for (idx, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    Err(err) => out.push_str(&format!("shard {idx}: unreachable: {err}\n")),
                    Ok(response) if parsed.has_flag("raw") => {
                        out.push_str(&response.raw);
                        out.push('\n');
                    }
                    Ok(response) => {
                        out.push_str(&format!("shard {idx}:\n"));
                        out.push_str(&render_trace(response)?);
                    }
                }
            }
            Ok(out)
        }
        "shutdown" => {
            router.shutdown_all().map_err(client_error)?;
            Ok(format!("{} shard(s) are stopping\n", router.shard_count()))
        }
        "batch" => {
            let requests = read_batch_file(parsed)?;
            let outcomes = router.call_batch(&requests).map_err(client_error)?;
            render_batch_outcomes(&outcomes, parsed.has_flag("raw"))
        }
        "refine" | "highest-theta" | "lowest-k" => {
            let op = match op_text {
                "refine" => SolveOp::Refine,
                "highest-theta" => SolveOp::HighestTheta,
                _ => SolveOp::LowestK,
            };
            let request = build_solve_request(op, parsed)?;
            let shard = router.shard_of(&request);
            let response = router.solve(&request).map_err(client_error)?;
            if parsed.has_flag("raw") {
                return Ok(response.raw.clone());
            }
            let mut out = format!("routed to shard {shard}/{}\n", router.shard_count());
            out.push_str(&render_response(op_text, &response)?);
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "unknown client operation '{other}'; expected refine, highest-theta, \
             lowest-k, batch, status, trace, or shutdown"
        ))),
    }
}

/// `client trace`: the recorder gauges plus one JSON object per span.
fn render_trace(response: &Response) -> Result<String, CliError> {
    let Some(result) = response.result() else {
        return Err(CliError::Usage("malformed trace response".to_owned()));
    };
    let depth = result.get("depth").and_then(Json::as_int).unwrap_or(0);
    let dropped = result.get("dropped").and_then(Json::as_int).unwrap_or(0);
    let spans: &[Json] = match result.get("spans") {
        Some(Json::Arr(spans)) => spans,
        _ => &[],
    };
    let mut out = format!(
        "trace: {} span(s), recorder depth {depth}, dropped {dropped}\n",
        spans.len()
    );
    for span in spans {
        out.push_str(&span.to_string());
        out.push('\n');
    }
    Ok(out)
}

/// `client status --cluster …`: one row per shard plus aggregate totals.
fn render_cluster_status(router: &mut Router, raw: bool) -> Result<String, CliError> {
    let statuses = router.status_all();
    let addrs: Vec<String> = router.addrs().iter().map(|a| (*a).to_owned()).collect();
    if raw {
        let mut out = String::new();
        for status in &statuses {
            match status {
                Ok(response) => out.push_str(&response.raw),
                Err(err) => out.push_str(&strudel_server::protocol::encode_error(&err.to_string())),
            }
            out.push('\n');
        }
        return Ok(out);
    }
    let mut out = format!(
        "{:<5} {:<21} {:<8} {:<7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>11} {:>6} {:>8}\n",
        "shard",
        "addr",
        "role",
        "poller",
        "solves",
        "hits",
        "misses",
        "hit_rate",
        "warm",
        "entries",
        "wrong_shard",
        "lag",
        "p99_us"
    );
    let mut totals = ClusterTotals::default();
    for (idx, status) in statuses.iter().enumerate() {
        let addr = addrs.get(idx).map(String::as_str).unwrap_or("?");
        match status {
            Err(err) => out.push_str(&format!("{idx:<5} {addr:<21} unreachable: {err}\n")),
            Ok(response) => match response.result() {
                None => out.push_str(&format!("{idx:<5} {addr:<21} malformed status\n")),
                Some(result) => out.push_str(&shard_status_row(idx, addr, result, &mut totals)),
            },
        }
    }
    let total_rate = if totals.hits + totals.misses == 0 {
        "0.0000".to_owned()
    } else {
        format!(
            "{:.4}",
            totals.hits as f64 / (totals.hits + totals.misses) as f64
        )
    };
    let total_p99 = totals
        .stages
        .iter()
        .find(|(name, _)| name == "total")
        .map_or_else(|| "-".to_owned(), |(_, merged)| merged.p99().to_string());
    out.push_str(&format!(
        "{:<5} {:<21} {:<8} {:<7} {:>8} {:>8} {:>8} {total_rate:>8} {:>8} {:>8} {:>11} {:>6} {total_p99:>8}\n",
        "total",
        "",
        "",
        "",
        totals.solves,
        totals.hits,
        totals.misses,
        totals.warm,
        totals.entries,
        totals.wrong,
        "",
    ));
    // Fleet-wide stage quantiles, merged bucket-by-bucket from every
    // reporting shard's observe histograms. Absent with tracing off.
    if !totals.stages.is_empty() {
        out.push_str("stages (merged across shards):\n");
        for (name, merged) in &totals.stages {
            out.push_str(&format!(
                "  {name:<10} {:>8} spans, p50 {:>6} us, p99 {:>6} us, max {:>6} us\n",
                merged.count,
                merged.p50(),
                merged.p99(),
                merged.max,
            ));
        }
    }
    // Per-tenant roll-up across shards, shown only when some shard knows a
    // tenant beyond the implicit 'default' (a tenancy-free cluster keeps
    // the pre-tenancy table shape).
    let mut tenants: Vec<(String, [i64; 4])> = Vec::new();
    for response in statuses.iter().flatten() {
        let Some(result) = response.result() else {
            continue;
        };
        let Some(Json::Arr(list)) = result.get("tenants") else {
            continue;
        };
        for tenant in list {
            let name = tenant
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned();
            let field = |key: &str| tenant.get(key).and_then(Json::as_int).unwrap_or(0);
            let row = [
                field("hits"),
                field("misses"),
                field("refusals"),
                field("entries"),
            ];
            match tenants.iter_mut().find(|(seen, _)| *seen == name) {
                Some((_, acc)) => {
                    for (sum, add) in acc.iter_mut().zip(row) {
                        *sum += add;
                    }
                }
                None => tenants.push((name, row)),
            }
        }
    }
    if tenants.iter().any(|(name, _)| name != "default") {
        out.push_str("tenants:\n");
        for (name, [hits, misses, refusals, entries]) in &tenants {
            out.push_str(&format!(
                "  {name}: {hits} hits, {misses} misses, {refusals} refusals, {entries} entries\n"
            ));
        }
    }
    Ok(out)
}

/// Accumulated cluster totals: scalar counters summed across shards, plus
/// per-stage latency histograms merged for fleet-wide quantiles.
#[derive(Default)]
struct ClusterTotals {
    solves: i64,
    hits: i64,
    misses: i64,
    warm: i64,
    entries: i64,
    wrong: i64,
    stages: Vec<(String, HistogramSnapshot)>,
}

/// Walks a nested path of status object members.
fn status_path<'a>(result: &'a Json, path: &[&str]) -> Option<&'a Json> {
    let mut value = result;
    for key in path {
        value = value.get(key)?;
    }
    Some(value)
}

/// A counter cell of the cluster table: the value at `path`, or `-` when
/// the shard's status lacks the enclosing `block` entirely (an older build,
/// or a feature left off). A missing block must read as missing — rendering
/// it as a silent zero hides which shards actually reported.
fn block_cell(result: &Json, block: &str, path: &[&str]) -> String {
    match result.get(block) {
        None => "-".to_owned(),
        Some(_) => status_path(result, path)
            .and_then(Json::as_int)
            .unwrap_or(0)
            .to_string(),
    }
}

/// One shard's row of the cluster status table, accumulated into `totals`
/// (blocks the shard didn't report contribute nothing).
fn shard_status_row(idx: usize, addr: &str, result: &Json, totals: &mut ClusterTotals) -> String {
    let int = |path: &[&str]| {
        status_path(result, path)
            .and_then(Json::as_int)
            .unwrap_or(0)
    };
    let row_solves = int(&["requests", "refine"])
        + int(&["requests", "highest_theta"])
        + int(&["requests", "lowest_k"]);
    let row_hits = int(&["cache", "hits"]);
    let row_misses = int(&["cache", "misses"]);
    let hit_rate = status_path(result, &["cache", "hit_rate"])
        .and_then(Json::as_str)
        .unwrap_or("-");
    let role = status_path(result, &["replication", "role"])
        .and_then(Json::as_str)
        .unwrap_or("-");
    let backend = status_path(result, &["poller", "backend"])
        .and_then(Json::as_str)
        .unwrap_or("-");
    let warm = block_cell(result, "solver", &["solver", "warm_solves"]);
    let entries = int(&["cache", "entries"]);
    let wrong = block_cell(result, "shard", &["shard", "wrong_shard"]);
    let lag = block_cell(result, "replication", &["replication", "lag"]);
    let mut p99 = "-".to_owned();
    if let Some(Json::Obj(members)) = status_path(result, &["observe", "stages"]) {
        for (name, stage) in members {
            let Some(histogram) = histogram_from_json(stage) else {
                continue;
            };
            if histogram.count == 0 {
                continue;
            }
            if name == "total" {
                p99 = histogram.p99().to_string();
            }
            match totals.stages.iter_mut().find(|(seen, _)| seen == name) {
                Some((_, merged)) => merged.merge(&histogram),
                None => totals.stages.push((name.clone(), histogram)),
            }
        }
    }
    totals.solves += row_solves;
    totals.hits += row_hits;
    totals.misses += row_misses;
    totals.entries += entries;
    if result.get("solver").is_some() {
        totals.warm += int(&["solver", "warm_solves"]);
    }
    if result.get("shard").is_some() {
        totals.wrong += int(&["shard", "wrong_shard"]);
    }
    format!(
        "{idx:<5} {addr:<21} {role:<8} {backend:<7} {row_solves:>8} {row_hits:>8} \
         {row_misses:>8} {hit_rate:>8} {warm:>8} {entries:>8} {wrong:>11} {lag:>6} {p99:>8}\n"
    )
}

/// Reads the `client batch` FILE: one JSON request object per line.
fn read_batch_file(parsed: &crate::args::ParsedArgs) -> Result<Vec<Json>, CliError> {
    let Some(path) = parsed.positional(1) else {
        return Err(CliError::Usage(
            "'client batch' needs a FILE with one JSON request per line".to_owned(),
        ));
    };
    let text = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })?;
    let requests: Vec<Json> = text
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| {
            strudel_server::json::parse(line)
                .map_err(|err| CliError::Usage(format!("invalid request line in {path}: {err}")))
        })
        .collect::<Result<_, _>>()?;
    if requests.is_empty() {
        return Err(CliError::Usage(format!("{path} contains no requests")));
    }
    Ok(requests)
}

/// `client batch FILE`: one JSON request object per line of FILE, shipped
/// as a single batch envelope.
fn run_batch(client: &mut Client, parsed: &crate::args::ParsedArgs) -> Result<String, CliError> {
    let requests = read_batch_file(parsed)?;
    let outcomes = client.call_batch(&requests).map_err(client_error)?;
    render_batch_outcomes(&outcomes, parsed.has_flag("raw"))
}

/// Renders per-element batch outcomes (shared by the single-server and
/// cluster paths).
fn render_batch_outcomes(
    outcomes: &[Result<Response, String>],
    raw: bool,
) -> Result<String, CliError> {
    let mut out = String::new();
    if raw {
        for outcome in outcomes {
            match outcome {
                Ok(response) => out.push_str(&response.raw),
                Err(message) => out.push_str(&strudel_server::protocol::encode_error(message)),
            }
            out.push('\n');
        }
        return Ok(out);
    }
    out.push_str(&format!("batch of {} request(s):\n", outcomes.len()));
    for (idx, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(response) => {
                let op = response
                    .value
                    .get("op")
                    .and_then(Json::as_str)
                    .unwrap_or("?");
                let source = response.source().map(Source::name).unwrap_or("?");
                out.push_str(&format!("  [{idx}] ok: {op}, source: {source}\n"));
            }
            Err(message) => out.push_str(&format!("  [{idx}] error: {message}\n")),
        }
    }
    Ok(out)
}

/// The validated `--framing` choice, if any. `None` lets the client defer
/// to `STRUDEL_FRAMING` and then to the line-JSON default.
fn framing_option(parsed: &crate::args::ParsedArgs) -> Result<Option<FramingMode>, CliError> {
    match parsed.option("framing") {
        Some(text) => FramingMode::parse(text)
            .map(Some)
            .map_err(|err| CliError::Usage(format!("invalid value '{text}' for --framing: {err}"))),
        None => Ok(None),
    }
}

fn client_error(err: ClientError) -> CliError {
    match err {
        ClientError::Io(source) => CliError::Io {
            path: "server connection".to_owned(),
            source,
        },
        other => CliError::Usage(other.to_string()),
    }
}

fn build_solve_request(
    op: SolveOp,
    parsed: &crate::args::ParsedArgs,
) -> Result<SolveRequest, CliError> {
    let Some(path) = parsed.positional(1) else {
        return Err(CliError::Usage(format!(
            "'client {}' needs a dataset FILE to build the view from",
            op.name()
        )));
    };
    let graph = load_graph(path)?;
    let (_, view) = views_of(&graph, parsed.option("sort"))?;

    let spec = match parsed.option("rule") {
        Some(text) => parse_sigma_spec(text)?,
        None => SigmaSpec::Coverage,
    };
    let engine = match parsed.option("engine") {
        Some(name) => EngineKind::parse(name).map_err(|err| CliError::Usage(err.message))?,
        None => EngineKind::Hybrid,
    };
    let theta = match parsed.option("theta") {
        Some(text) => Some(parse_ratio(text, "theta")?),
        None => None,
    };
    let step = match parsed.option("step") {
        Some(text) => Some(parse_ratio(text, "step")?),
        None => None,
    };
    let tenant = match parsed.option("tenant") {
        Some(name) => {
            strudel_server::protocol::validate_tenant(name).map_err(|err| {
                CliError::Usage(format!("invalid value '{name}' for --tenant: {err}"))
            })?;
            Some(name.to_owned())
        }
        None => None,
    };
    let request = SolveRequest {
        op,
        view,
        spec,
        engine,
        k: parsed.option_parsed::<usize>("k")?,
        theta,
        step,
        max_k: parsed.option_parsed::<usize>("max-k")?,
        time_limit: parse_time_limit(parsed)?,
        routing: None, // the Router stamps this when --cluster is given
        tenant,
    };
    // Mirror the server's validation client-side for friendlier messages.
    match op {
        SolveOp::Refine if request.k.is_none() || request.theta.is_none() => Err(CliError::Usage(
            "'client refine' needs --k and --theta".to_owned(),
        )),
        SolveOp::HighestTheta if request.k.is_none() => Err(CliError::Usage(
            "'client highest-theta' needs --k".to_owned(),
        )),
        SolveOp::LowestK if request.theta.is_none() => Err(CliError::Usage(
            "'client lowest-k' needs --theta".to_owned(),
        )),
        _ => Ok(request),
    }
}

fn parse_ratio(text: &str, name: &str) -> Result<Ratio, CliError> {
    Ratio::parse(text)
        .map_err(|err| CliError::Usage(format!("invalid value '{text}' for --{name}: {err}")))
}

fn render_response(op: &str, response: &Response) -> Result<String, CliError> {
    let source = match response.source() {
        Some(Source::Solved) => "solved",
        Some(Source::Cache) => "cache",
        Some(Source::Coalesced) => "coalesced",
        None => "?",
    };
    let mut out = format!("op: {op}, source: {source}\n");
    let Some(result) = response.result() else {
        return Ok(out);
    };
    match op {
        "status" => out.push_str(&render_status(result)),
        "shutdown" => out.push_str("server is stopping\n"),
        "refine" => match result.get("outcome").and_then(Json::as_str) {
            Some("refinement") => {
                out.push_str("outcome: refinement exists\n");
                if let Some(refinement) = result.get("refinement") {
                    out.push_str(&render_refinement(refinement)?);
                }
            }
            Some(other) => out.push_str(&format!("outcome: {other}\n")),
            None => out.push_str("outcome: missing\n"),
        },
        "highest-theta" => {
            if let Some(theta) = result.get("theta").and_then(Json::as_str) {
                let pretty = Ratio::parse(theta)
                    .map(format_sigma)
                    .unwrap_or_else(|_| theta.to_owned());
                out.push_str(&format!("highest θ: {pretty}\n"));
            }
            out.push_str(&render_search_tail(result)?);
        }
        "lowest-k" => {
            match result.get("k") {
                Some(Json::Int(k)) => out.push_str(&format!("lowest k: {k}\n")),
                _ => out.push_str("no k meets the threshold within the sweep bound\n"),
            }
            out.push_str(&render_search_tail(result)?);
        }
        _ => {}
    }
    Ok(out)
}

fn render_search_tail(result: &Json) -> Result<String, CliError> {
    let mut out = String::new();
    if let Some(probes) = result.get("probes").and_then(Json::as_int) {
        out.push_str(&format!("probes: {probes}\n"));
    }
    if result.get("hit_budget").and_then(Json::as_bool) == Some(true) {
        out.push_str("(budget-limited)\n");
    }
    match result.get("refinement") {
        Some(Json::Null) | None => {}
        Some(refinement) => out.push_str(&render_refinement(refinement)?),
    }
    Ok(out)
}

fn render_refinement(value: &Json) -> Result<String, CliError> {
    let wire: WireRefinement = refinement_from_json(value)
        .map_err(|err| CliError::Usage(format!("malformed server response: {err}")))?;
    let mut out = format!("{} implicit sort(s):\n", wire.sorts.len());
    for (idx, sort) in wire.sorts.iter().enumerate() {
        let sigma = Ratio::parse(&sort.sigma)
            .map(format_sigma)
            .unwrap_or_else(|_| sort.sigma.clone());
        out.push_str(&format!(
            "  sort {idx}: {} subjects, {} signatures, σ = {sigma}\n",
            sort.subjects,
            sort.signatures.len(),
        ));
    }
    Ok(out)
}

fn render_status(result: &Json) -> String {
    let int = |path: &[&str]| -> i64 {
        let mut value = result;
        for key in path {
            match value.get(key) {
                Some(inner) => value = inner,
                None => return 0,
            }
        }
        value.as_int().unwrap_or(0)
    };
    let mut out = format!(
        "workers: {}, uptime: {} ms, connections: {} ({} open)\n\
         requests: {} refine / {} highest-theta / {} lowest-k / {} status, errors: {}\n\
         batches: {} envelopes carrying {} requests\n\
         cache: {} hits, {} misses, {} evictions, {} resident of {}\n\
         single-flight: {} solves led, {} requests coalesced\n",
        int(&["workers"]),
        int(&["uptime_ms"]),
        int(&["connections"]),
        int(&["open_connections"]),
        int(&["requests", "refine"]),
        int(&["requests", "highest_theta"]),
        int(&["requests", "lowest_k"]),
        int(&["requests", "status"]),
        int(&["requests", "errors"]),
        int(&["requests", "batch"]),
        int(&["requests", "batched"]),
        int(&["cache", "hits"]),
        int(&["cache", "misses"]),
        int(&["cache", "evictions"]),
        int(&["cache", "entries"]),
        int(&["cache", "capacity"]),
        int(&["singleflight", "leaders"]),
        int(&["singleflight", "shared"]),
    );
    if let Some(poller) = result.get("poller") {
        let backend = poller.get("backend").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!(
            "poller: {backend} backend, {} waits, {} wakeups, {} spurious, {} syscalls, \
             {} fds registered\n",
            int(&["poller", "waits"]),
            int(&["poller", "wakeups"]),
            int(&["poller", "spurious"]),
            int(&["poller", "syscalls"]),
            int(&["poller", "registered"]),
        ));
    }
    if result.get("wire").is_some() {
        out.push_str(&format!(
            "wire: {} frames in / {} out, {} bytes in / {} out, {} decode errors, \
             {} bin1 + {} json connection(s)\n",
            int(&["wire", "frames_in"]),
            int(&["wire", "frames_out"]),
            int(&["wire", "bytes_in"]),
            int(&["wire", "bytes_out"]),
            int(&["wire", "decode_errors"]),
            int(&["wire", "connections", "bin1"]),
            int(&["wire", "connections", "json"]),
        ));
    }
    if let Some(solver) = result.get("solver") {
        let mode = solver.get("mode").and_then(Json::as_str).unwrap_or("?");
        let seed_rate = solver
            .get("seed_hit_rate")
            .and_then(Json::as_str)
            .unwrap_or("0.0000");
        out.push_str(&format!(
            "solver: {mode} mode, {} cold / {} warm solves (seed rate {seed_rate}), \
             {} hints repaired, {} nodes ({} propagations, {} conflicts), {} restarts\n",
            int(&["solver", "cold_solves"]),
            int(&["solver", "warm_solves"]),
            int(&["solver", "repaired_hints"]),
            int(&["solver", "nodes"]),
            int(&["solver", "propagations"]),
            int(&["solver", "conflicts"]),
            int(&["solver", "restarts"]),
        ));
        let wins = int(&["solver", "portfolio", "greedy"])
            + int(&["solver", "portfolio", "ilp_warm"])
            + int(&["solver", "portfolio", "ilp_cold"]);
        if wins > 0 {
            out.push_str(&format!(
                "portfolio wins: {} greedy / {} ilp-warm / {} ilp-cold\n",
                int(&["solver", "portfolio", "greedy"]),
                int(&["solver", "portfolio", "ilp_warm"]),
                int(&["solver", "portfolio", "ilp_cold"]),
            ));
        }
    }
    if let Some(observe) = result.get("observe") {
        let sample = int(&["observe", "sample_every"]);
        let slow_ms = observe.get("slow_ms").and_then(Json::as_int).unwrap_or(-1);
        // Silent unless tracing is (or was) on: a tracing-free server keeps
        // the pre-observability report shape.
        if sample > 0 || slow_ms >= 0 || int(&["observe", "ticks"]) > 0 {
            let sampling = if sample > 0 {
                format!("1/{sample}")
            } else {
                "off".to_owned()
            };
            let slow = if slow_ms >= 0 {
                format!(">= {slow_ms} ms")
            } else {
                "off".to_owned()
            };
            out.push_str(&format!(
                "observe: sampling {sampling}, slow log {slow}, {} seen ({} sampled, {} slow), \
                 recorder {}/{} (dropped {})\n",
                int(&["observe", "ticks"]),
                int(&["observe", "sampled"]),
                int(&["observe", "slow"]),
                int(&["observe", "recorder", "depth"]),
                int(&["observe", "recorder", "capacity"]),
                int(&["observe", "recorder", "dropped"]),
            ));
            out.push_str(&format!(
                "  {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                "stage", "count", "p50_us", "p90_us", "p99_us", "max_us"
            ));
            if let Some(Json::Obj(stages)) = observe.get("stages") {
                for (name, stage) in stages {
                    let field = |key: &str| stage.get(key).and_then(Json::as_int).unwrap_or(0);
                    out.push_str(&format!(
                        "  {name:<10} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
                        field("count"),
                        field("p50"),
                        field("p90"),
                        field("p99"),
                        field("max"),
                    ));
                }
            }
            if let Some(Json::Arr(tenants)) = observe.get("tenants") {
                for tenant in tenants {
                    let name = tenant.get("name").and_then(Json::as_str).unwrap_or("?");
                    let field = |key: &str| tenant.get(key).and_then(Json::as_int).unwrap_or(0);
                    // The lone implicit tenant adds nothing over the
                    // 'total' stage row.
                    if name != "default" || tenants.len() > 1 {
                        out.push_str(&format!(
                            "  tenant {name}: {} span(s), p50 {} us, p99 {} us\n",
                            field("count"),
                            field("p50"),
                            field("p99"),
                        ));
                    }
                }
            }
        }
    }
    if result.get("persist").map(|p| p != &Json::Null) == Some(true) {
        out.push_str(&format!(
            "persist: {} replayed, {} puts, {} tombstones, {} dead of {} live, {} compactions, {} fsyncs\n",
            int(&["persist", "replayed"]),
            int(&["persist", "puts"]),
            int(&["persist", "tombstones"]),
            int(&["persist", "dead"]),
            int(&["persist", "live"]),
            int(&["persist", "compactions"]),
            int(&["persist", "fsyncs"]),
        ));
    }
    if let Some(repl) = result.get("replication") {
        let role = repl.get("role").and_then(Json::as_str).unwrap_or("?");
        let leader = repl
            .get("leader")
            .and_then(Json::as_str)
            .map(|addr| format!(" of {addr}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "replication: {role}{leader}, epoch {}, seq {} (lag {}), {} subscriber(s), \
             {} sent / {} applied\n",
            int(&["replication", "epoch"]),
            int(&["replication", "last_seq"]),
            int(&["replication", "lag"]),
            int(&["replication", "subscribers"]),
            int(&["replication", "records_sent"]),
            int(&["replication", "records_applied"]),
        ));
    }
    if let Some(Json::Arr(tenants)) = result.get("tenants") {
        for tenant in tenants {
            let name = tenant.get("name").and_then(Json::as_str).unwrap_or("?");
            let field = |key: &str| tenant.get(key).and_then(Json::as_int).unwrap_or(0);
            out.push_str(&format!(
                "tenant {name}: {} hits, {} misses, {} evictions, {} refusals, \
                 {} inflight, {} resident (reserve {})\n",
                field("hits"),
                field("misses"),
                field("evictions"),
                field("refusals"),
                field("inflight"),
                field("entries"),
                field("reserved"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::test_support::{args, write_persons_ntriples};
    use strudel_server::prelude::{start_server, ServerConfig};

    fn start_test_server() -> (strudel_server::prelude::ServerHandle, String) {
        let handle = start_server(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_capacity: 16,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        (handle, addr)
    }

    #[test]
    fn refine_round_trips_and_second_call_hits_the_cache() {
        let (handle, addr) = start_test_server();
        let file = write_persons_ntriples("client-refine");
        let file = file.to_str().unwrap();

        let request = [
            "refine",
            file,
            "--addr",
            &addr,
            "--sort",
            "http://ex/Person",
            "--k",
            "2",
            "--theta",
            "0.8",
        ];
        let cold = run(&args(&request)).unwrap();
        assert!(cold.contains("source: solved"), "cold: {cold}");
        assert!(
            cold.contains("outcome:"),
            "cold response must state the outcome: {cold}"
        );

        let warm = run(&args(&request)).unwrap();
        assert!(warm.contains("source: cache"), "warm: {warm}");
        // Identical answers modulo the source line.
        assert_eq!(
            cold.replace("source: solved", "source: X"),
            warm.replace("source: cache", "source: X"),
        );

        let status = run(&args(&["status", "--addr", &addr])).unwrap();
        assert!(status.contains("cache: 1 hits"), "status: {status}");
        assert!(status.contains("solver: request mode"), "status: {status}");

        run(&args(&["shutdown", "--addr", &addr])).unwrap();
        handle.wait();
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn search_operations_render_their_results() {
        let (handle, addr) = start_test_server();
        let file = write_persons_ntriples("client-search");
        let file = file.to_str().unwrap();

        let output = run(&args(&[
            "highest-theta",
            file,
            "--addr",
            &addr,
            "--sort",
            "http://ex/Person",
            "--k",
            "2",
        ]))
        .unwrap();
        assert!(output.contains("highest θ"), "output: {output}");
        assert!(output.contains("implicit sort(s)"), "output: {output}");

        let output = run(&args(&[
            "lowest-k",
            file,
            "--addr",
            &addr,
            "--sort",
            "http://ex/Person",
            "--theta",
            "0.9",
            "--max-k",
            "6",
        ]))
        .unwrap();
        assert!(output.contains("lowest k"), "output: {output}");

        let raw = run(&args(&[
            "refine",
            file,
            "--addr",
            &addr,
            "--sort",
            "http://ex/Person",
            "--k",
            "2",
            "--theta",
            "1/2",
            "--raw",
        ]))
        .unwrap();
        assert!(raw.starts_with("{\"ok\":true,"), "raw: {raw}");

        run(&args(&["shutdown", "--addr", &addr])).unwrap();
        handle.wait();
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn batch_files_ship_one_envelope_and_render_per_element() {
        let (handle, addr) = start_test_server();
        let path =
            std::env::temp_dir().join(format!("strudel-cli-batch-{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"op\":\"status\"}\n\
             {\"op\":\"refine\",\"view\":{\"properties\":[\"p\"],\"signatures\":[[[0],3]]},\"k\":1,\"theta\":\"1/2\"}\n\
             {\"op\":\"frobnicate\"}\n",
        )
        .unwrap();
        let file = path.to_str().unwrap();

        let report = run(&args(&["batch", file, "--addr", &addr])).unwrap();
        assert!(report.contains("batch of 3 request(s)"), "report: {report}");
        assert!(report.contains("[0] ok: status"), "report: {report}");
        assert!(report.contains("[1] ok: refine"), "report: {report}");
        assert!(report.contains("[2] error:"), "report: {report}");

        let raw = run(&args(&["batch", file, "--addr", &addr, "--raw"])).unwrap();
        let lines: Vec<&str> = raw.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[1].contains("\"source\":\"cache\"") || lines[1].contains("\"source\":\"solved\"")
        );
        assert!(lines[2].starts_with("{\"ok\":false"), "raw: {raw}");

        run(&args(&["shutdown", "--addr", &addr])).unwrap();
        handle.wait();
        std::fs::remove_file(&path).ok();
    }

    fn start_test_cluster() -> (Vec<strudel_server::prelude::ServerHandle>, String) {
        use strudel_server::prelude::ShardSpec;
        let handles: Vec<_> = (0..3)
            .map(|index| {
                start_server(&ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    workers: 1,
                    cache_capacity: 16,
                    shard: Some(ShardSpec { index, count: 3 }),
                    ..ServerConfig::default()
                })
                .unwrap()
            })
            .collect();
        let cluster = handles
            .iter()
            .map(|handle| handle.addr().to_string())
            .collect::<Vec<_>>()
            .join(",");
        (handles, cluster)
    }

    #[test]
    fn cluster_solves_route_and_status_aggregates_across_shards() {
        let (handles, cluster) = start_test_cluster();
        let file = write_persons_ntriples("client-cluster");
        let file = file.to_str().unwrap();

        let request = [
            "refine",
            file,
            "--cluster",
            &cluster,
            "--sort",
            "http://ex/Person",
            "--k",
            "2",
            "--theta",
            "0.8",
        ];
        let cold = run(&args(&request)).unwrap();
        assert!(cold.contains("routed to shard"), "cold: {cold}");
        assert!(cold.contains("source: solved"), "cold: {cold}");
        let warm = run(&args(&request)).unwrap();
        assert!(
            warm.contains("source: cache"),
            "the same key must route to the same shard: {warm}"
        );

        let status = run(&args(&["status", "--cluster", &cluster])).unwrap();
        assert!(status.contains("shard"), "status: {status}");
        assert!(status.contains("hit_rate"), "status: {status}");
        assert!(status.contains("warm"), "status: {status}");
        assert!(status.contains("total"), "status: {status}");
        // Three shard rows plus the header and the totals row.
        assert_eq!(status.lines().count(), 5, "status: {status}");
        // One hit somewhere, aggregated into the totals row.
        let totals = status.lines().last().unwrap();
        assert!(totals.starts_with("total"), "status: {status}");

        let report = run(&args(&["shutdown", "--cluster", &cluster])).unwrap();
        assert!(report.contains("3 shard(s)"), "report: {report}");
        for handle in handles {
            handle.wait();
        }
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn cluster_batches_split_and_merge_in_request_order() {
        let (handles, cluster) = start_test_cluster();
        let path = std::env::temp_dir().join(format!(
            "strudel-cli-cluster-batch-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(
            &path,
            "{\"op\":\"refine\",\"view\":{\"properties\":[\"p\"],\"signatures\":[[[0],3]]},\"k\":1,\"theta\":\"1/2\"}\n\
             {\"op\":\"frobnicate\"}\n\
             {\"op\":\"refine\",\"view\":{\"properties\":[\"q\",\"r\"],\"signatures\":[[[0],2],[[0,1],5]]},\"k\":1,\"theta\":\"1/3\"}\n",
        )
        .unwrap();
        let file = path.to_str().unwrap();

        let report = run(&args(&["batch", file, "--cluster", &cluster])).unwrap();
        assert!(report.contains("batch of 3 request(s)"), "report: {report}");
        assert!(report.contains("[0] ok: refine"), "report: {report}");
        assert!(report.contains("[1] error:"), "report: {report}");
        assert!(report.contains("[2] ok: refine"), "report: {report}");

        run(&args(&["shutdown", "--cluster", &cluster])).unwrap();
        for handle in handles {
            handle.wait();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn framing_flag_negotiates_bin1_and_answers_identically() {
        let (handle, addr) = start_test_server();
        let file = write_persons_ntriples("client-framing");
        let file = file.to_str().unwrap();

        let request = |framing: &str| {
            [
                "refine",
                file,
                "--addr",
                &addr,
                "--sort",
                "http://ex/Person",
                "--k",
                "2",
                "--theta",
                "0.8",
                "--framing",
                framing,
                "--raw",
            ]
            .map(str::to_owned)
            .to_vec()
        };
        let over_json = run(&request("json")).unwrap();
        let over_bin = run(&request("bin")).unwrap();
        assert!(over_json.starts_with("{\"ok\":true,"), "json: {over_json}");
        assert_eq!(
            over_json.replace("\"source\":\"solved\"", "\"source\":\"X\""),
            over_bin.replace("\"source\":\"cache\"", "\"source\":\"X\""),
            "responses must be byte-identical across framings"
        );

        // The status report shows the negotiated connection in the wire
        // block (and `auto` negotiates against a current server too).
        let status = run(&args(&["status", "--addr", &addr, "--framing", "auto"])).unwrap();
        assert!(status.contains("wire:"), "status: {status}");
        assert!(status.contains("frames in"), "status: {status}");

        let err = run(&args(&["status", "--addr", &addr, "--framing", "morse"])).unwrap_err();
        assert!(err.to_string().contains("morse"), "err: {err}");

        run(&args(&["shutdown", "--addr", &addr])).unwrap();
        handle.wait();
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn trace_dumps_spans_and_status_renders_the_observe_block() {
        let handle = start_server(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            cache_capacity: 16,
            trace_sample: Some(1),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let file = write_persons_ntriples("client-trace");
        let file = file.to_str().unwrap();

        let request = [
            "refine",
            file,
            "--addr",
            &addr,
            "--sort",
            "http://ex/Person",
            "--k",
            "2",
            "--theta",
            "0.8",
        ];
        run(&args(&request)).unwrap();
        run(&args(&request)).unwrap();

        // Every span (a solve and a cache hit) is sampled at 1/1 and dumps
        // as one JSON object per line.
        let dump = run(&args(&["trace", "--addr", &addr])).unwrap();
        assert!(dump.contains("2 span(s)"), "dump: {dump}");
        let span_line = dump.lines().nth(1).expect("a span line");
        assert!(span_line.starts_with("{\"seq\":1,"), "dump: {dump}");
        assert!(span_line.contains("\"op\":\"refine\""), "dump: {dump}");
        assert!(span_line.contains("\"outcome\":\"solved\""), "dump: {dump}");
        assert!(span_line.contains("\"total_us\":"), "dump: {dump}");
        assert!(dump.contains("\"outcome\":\"cache\""), "dump: {dump}");

        // The slow log is off, so --slow filters everything out; no span
        // rode the 'acme' tenant either.
        let slow = run(&args(&["trace", "--addr", &addr, "--slow"])).unwrap();
        assert!(slow.contains("0 span(s)"), "slow: {slow}");
        let acme = run(&args(&["trace", "--addr", &addr, "--tenant", "acme"])).unwrap();
        assert!(acme.contains("0 span(s)"), "acme: {acme}");

        let status = run(&args(&["status", "--addr", &addr])).unwrap();
        assert!(status.contains("observe: sampling 1/1"), "status: {status}");
        assert!(status.contains("slow log off"), "status: {status}");
        for stage in ["decode", "admission", "cache", "solve", "flush", "total"] {
            assert!(status.contains(stage), "missing {stage} row: {status}");
        }

        run(&args(&["shutdown", "--addr", &addr])).unwrap();
        handle.wait();
        std::fs::remove_file(file).ok();
    }

    #[test]
    fn cluster_rows_render_missing_status_blocks_as_dashes() {
        // A shard speaking an older status dialect: no poller, solver,
        // shard, replication, or observe blocks at all.
        let old = strudel_server::json::parse(
            "{\"requests\":{\"refine\":3},\
              \"cache\":{\"hits\":1,\"misses\":2,\"entries\":2,\"hit_rate\":\"0.3333\"}}",
        )
        .unwrap();
        let mut totals = ClusterTotals::default();
        let row = shard_status_row(0, "127.0.0.1:1", &old, &mut totals);
        let cells: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(
            cells,
            vec![
                "0",
                "127.0.0.1:1",
                "-",
                "-",
                "3",
                "1",
                "2",
                "0.3333",
                "-",
                "2",
                "-",
                "-",
                "-"
            ],
            "missing blocks must render as '-', not silent zeros: {row}"
        );
        assert_eq!(totals.warm, 0);
        assert_eq!(totals.wrong, 0);

        // A current shard fills every cell and sums into the totals.
        let histogram = strudel_core::metrics::LatencyHistogram::new();
        histogram.record(100);
        histogram.record(200);
        let stage = strudel_server::trace::histogram_to_json(&histogram.snapshot());
        let new = Json::obj(vec![
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(4)),
                    ("misses", Json::Int(4)),
                    ("entries", Json::Int(4)),
                    ("hit_rate", Json::str("0.5000")),
                ]),
            ),
            ("solver", Json::obj(vec![("warm_solves", Json::Int(5))])),
            ("shard", Json::obj(vec![("wrong_shard", Json::Int(1))])),
            ("poller", Json::obj(vec![("backend", Json::str("epoll"))])),
            (
                "replication",
                Json::obj(vec![("role", Json::str("leader")), ("lag", Json::Int(0))]),
            ),
            (
                "observe",
                Json::obj(vec![(
                    "stages",
                    Json::Obj(vec![("total".to_owned(), stage)]),
                )]),
            ),
        ]);
        let row = shard_status_row(1, "127.0.0.1:2", &new, &mut totals);
        assert!(!row.contains('-'), "every reported cell is concrete: {row}");
        assert_eq!(totals.warm, 5);
        assert_eq!(totals.wrong, 1);
        let (name, merged) = totals.stages.first().expect("merged total stage");
        assert_eq!(name, "total");
        assert_eq!(merged.count, 2);
    }

    #[test]
    fn addr_and_cluster_are_mutually_exclusive() {
        let err = run(&args(&[
            "status",
            "--addr",
            "127.0.0.1:1",
            "--cluster",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn usage_errors_are_reported_before_connecting_where_possible() {
        let (handle, addr) = start_test_server();
        // Unknown op.
        let err = run(&args(&["frobnicate", "--addr", &addr])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
        // Missing FILE for a solve op.
        let err = run(&args(&["refine", "--addr", &addr])).unwrap_err();
        assert!(err.to_string().contains("FILE"));
        run(&args(&["shutdown", "--addr", &addr])).unwrap();
        handle.wait();

        // No server listening at all: a connection error, not a panic.
        let err = run(&args(&["status", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
    }
}
