//! A small, dependency-free command-line argument parser.
//!
//! Each command declares which `--options` take a value and which `--flags`
//! are boolean; everything else is a positional argument. Options may repeat
//! (`--rule cov --rule sim`). `--option=value` and `--option value` are both
//! accepted. Unknown options are an error — silently ignoring a typo like
//! `--theta0.9` would produce a misleading report.

use std::collections::BTreeMap;
use std::str::FromStr;

use crate::error::CliError;

/// What a command accepts.
#[derive(Clone, Copy, Debug)]
pub struct ArgSpec {
    /// Names (without `--`) of options that take a value.
    pub options: &'static [&'static str],
    /// Names (without `--`) of boolean flags.
    pub flags: &'static [&'static str],
    /// Minimum number of positional arguments.
    pub min_positional: usize,
    /// Maximum number of positional arguments.
    pub max_positional: usize,
}

/// The parsed form of a command line.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
}

impl ParsedArgs {
    /// The `idx`-th positional argument.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positionals.get(idx).map(String::as_str)
    }

    /// All positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The last value given for an option, if any.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options
            .get(name)
            .and_then(|values| values.last())
            .map(String::as_str)
    }

    /// Every value given for a (repeatable) option.
    pub fn option_values(&self, name: &str) -> &[String] {
        self.options.get(name).map_or(&[], Vec::as_slice)
    }

    /// The last value of an option parsed into `T`.
    pub fn option_parsed<T>(&self, name: &str) -> Result<Option<T>, CliError>
    where
        T: FromStr,
        T::Err: std::fmt::Display,
    {
        match self.option(name) {
            None => Ok(None),
            Some(text) => text.parse::<T>().map(Some).map_err(|err| {
                CliError::Usage(format!("invalid value '{text}' for --{name}: {err}"))
            }),
        }
    }

    /// Whether a boolean flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|flag| flag == name)
    }
}

/// Parses the arguments of one command according to its spec.
pub fn parse_args(args: &[String], spec: &ArgSpec) -> Result<ParsedArgs, CliError> {
    let mut parsed = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(rest) = arg.strip_prefix("--") {
            let (name, inline_value) = match rest.split_once('=') {
                Some((name, value)) => (name, Some(value.to_owned())),
                None => (rest, None),
            };
            if spec.flags.contains(&name) {
                if let Some(value) = inline_value {
                    return Err(CliError::Usage(format!(
                        "flag --{name} does not take a value (got '{value}')"
                    )));
                }
                parsed.flags.push(name.to_owned());
            } else if spec.options.contains(&name) {
                let value = match inline_value {
                    Some(value) => value,
                    None => iter
                        .next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("--{name} requires a value")))?,
                };
                parsed
                    .options
                    .entry(name.to_owned())
                    .or_default()
                    .push(value);
            } else {
                return Err(CliError::Usage(format!("unknown option --{name}")));
            }
        } else {
            parsed.positionals.push(arg.clone());
        }
    }
    if parsed.positionals.len() < spec.min_positional {
        return Err(CliError::Usage(format!(
            "expected at least {} positional argument(s), got {}",
            spec.min_positional,
            parsed.positionals.len()
        )));
    }
    if parsed.positionals.len() > spec.max_positional {
        return Err(CliError::Usage(format!(
            "expected at most {} positional argument(s), got {} ('{}' is unexpected)",
            spec.max_positional,
            parsed.positionals.len(),
            parsed.positionals[spec.max_positional]
        )));
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        options: &["rule", "k", "theta"],
        flags: &["render"],
        min_positional: 1,
        max_positional: 2,
    };

    fn args(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| (*w).to_owned()).collect()
    }

    #[test]
    fn parses_positionals_options_and_flags() {
        let parsed = parse_args(
            &args(&[
                "data.nt",
                "--rule",
                "cov",
                "--rule=sim",
                "--k",
                "3",
                "--render",
            ]),
            &SPEC,
        )
        .unwrap();
        assert_eq!(parsed.positional(0), Some("data.nt"));
        assert_eq!(parsed.positional(1), None);
        assert_eq!(
            parsed.option_values("rule"),
            &["cov".to_owned(), "sim".to_owned()]
        );
        assert_eq!(parsed.option("rule"), Some("sim"));
        assert_eq!(parsed.option_parsed::<usize>("k").unwrap(), Some(3));
        assert_eq!(parsed.option_parsed::<usize>("theta").unwrap(), None);
        assert!(parsed.has_flag("render"));
        assert!(!parsed.has_flag("verbose"));
    }

    #[test]
    fn rejects_unknown_options_and_bad_values() {
        let err = parse_args(&args(&["data.nt", "--bogus"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("--bogus"));

        let err = parse_args(&args(&["data.nt", "--k"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("requires a value"));

        let parsed = parse_args(&args(&["data.nt", "--k", "three"]), &SPEC).unwrap();
        let err = parsed.option_parsed::<usize>("k").unwrap_err();
        assert!(err.to_string().contains("three"));

        let err = parse_args(&args(&["data.nt", "--render=yes"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("does not take a value"));
    }

    #[test]
    fn enforces_positional_bounds() {
        let err = parse_args(&args(&[]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("at least 1"));

        let err = parse_args(&args(&["a.nt", "b.nt", "c.nt"]), &SPEC).unwrap_err();
        assert!(err.to_string().contains("at most 2"));
        assert!(err.to_string().contains("c.nt"));
    }
}
