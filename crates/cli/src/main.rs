//! The `strudel` binary: a thin wrapper around [`strudel_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match strudel_cli::run(&args) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            if matches!(error, strudel_cli::CliError::Usage(_)) {
                eprintln!("\n{}", strudel_cli::usage());
            }
            ExitCode::FAILURE
        }
    }
}
