//! Errors of the command-line tool.

use std::fmt;
use std::io;

use strudel_core::error::{AnnotateError, RefineError};
use strudel_rdf::error::{ModelError, ParseError};
use strudel_rules::error::{EvalError, RuleError};
use strudel_storage::error::StorageError;

/// Anything that can go wrong while running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is malformed (unknown command, missing or
    /// invalid argument). The message is shown together with the usage text.
    Usage(String),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Parsing an RDF document failed.
    Parse {
        /// The path of the offending document.
        path: String,
        /// The parse error, with line/column information.
        source: ParseError,
    },
    /// Parsing a structuredness rule failed.
    Rule(RuleError),
    /// Building a view of the dataset failed.
    Model(ModelError),
    /// Evaluating a structuredness function failed.
    Eval(EvalError),
    /// The refinement search failed.
    Refine(RefineError),
    /// The storage advisor failed.
    Storage(StorageError),
    /// Writing a refinement back into a graph failed.
    Annotate(AnnotateError),
    /// The dataset (or the requested sort) is empty.
    EmptyDataset(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::Io { path, source } => write!(f, "cannot access '{path}': {source}"),
            CliError::Parse { path, source } => write!(f, "cannot parse '{path}': {source}"),
            CliError::Rule(err) => write!(f, "invalid rule: {err}"),
            CliError::Model(err) => write!(f, "cannot build the dataset view: {err}"),
            CliError::Eval(err) => write!(f, "structuredness evaluation failed: {err}"),
            CliError::Refine(err) => write!(f, "refinement search failed: {err}"),
            CliError::Storage(err) => write!(f, "layout advisor failed: {err}"),
            CliError::Annotate(err) => write!(f, "cannot materialise the refinement: {err}"),
            CliError::EmptyDataset(what) => write!(f, "{what} contains no subjects"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Parse { source, .. } => Some(source),
            CliError::Rule(err) => Some(err),
            CliError::Model(err) => Some(err),
            CliError::Eval(err) => Some(err),
            CliError::Refine(err) => Some(err),
            CliError::Storage(err) => Some(err),
            CliError::Annotate(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RuleError> for CliError {
    fn from(err: RuleError) -> Self {
        CliError::Rule(err)
    }
}

impl From<ModelError> for CliError {
    fn from(err: ModelError) -> Self {
        CliError::Model(err)
    }
}

impl From<EvalError> for CliError {
    fn from(err: EvalError) -> Self {
        CliError::Eval(err)
    }
}

impl From<RefineError> for CliError {
    fn from(err: RefineError) -> Self {
        CliError::Refine(err)
    }
}

impl From<StorageError> for CliError {
    fn from(err: StorageError) -> Self {
        CliError::Storage(err)
    }
}

impl From<AnnotateError> for CliError {
    fn from(err: AnnotateError) -> Self {
        CliError::Annotate(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let usage = CliError::Usage("unknown command 'foo'".into());
        assert_eq!(usage.to_string(), "unknown command 'foo'");

        let io = CliError::Io {
            path: "/no/such/file.nt".into(),
            source: io::Error::new(io::ErrorKind::NotFound, "not found"),
        };
        assert!(io.to_string().contains("/no/such/file.nt"));

        let empty = CliError::EmptyDataset("sort <http://ex/Nothing>".into());
        assert!(empty.to_string().contains("http://ex/Nothing"));
    }

    #[test]
    fn conversions_preserve_the_source() {
        use std::error::Error;
        let err: CliError = RefineError::ZeroSorts.into();
        assert!(matches!(err, CliError::Refine(_)));
        assert!(err.source().is_some());

        let err: CliError = EvalError::SubjectConstantUnsupported.into();
        assert!(matches!(err, CliError::Eval(_)));
    }
}
