//! Parsing command-line rule and engine specifications.

use std::time::Duration;

use strudel_core::engine::{
    GreedyEngine, HybridEngine, IlpEngine, IlpEngineConfig, RefinementEngine,
};
use strudel_core::sigma::SigmaSpec;
use strudel_rules::parser::parse_rule;

use crate::error::CliError;

/// Parses a `--rule` argument into a structuredness function.
///
/// Accepted forms:
///
/// * `cov` / `coverage` — σ_Cov,
/// * `sim` / `similarity` — σ_Sim,
/// * `cov-ignoring:<p1>,<p2>,…` — σ_Cov ignoring the listed property IRIs,
/// * `dep:<p1>,<p2>` — σ_Dep[p1, p2],
/// * `symdep:<p1>,<p2>` — σ_SymDep[p1, p2],
/// * `depdisj:<p1>,<p2>` — the disjunctive dependency variant,
/// * anything containing `->` — a rule of the language, parsed verbatim.
pub fn parse_sigma_spec(text: &str) -> Result<SigmaSpec, CliError> {
    let trimmed = text.trim();
    match trimmed.to_ascii_lowercase().as_str() {
        "cov" | "coverage" => return Ok(SigmaSpec::Coverage),
        "sim" | "similarity" => return Ok(SigmaSpec::Similarity),
        _ => {}
    }
    if let Some(rest) = strip_prefix_ci(trimmed, "cov-ignoring:") {
        let properties = split_properties(rest, "cov-ignoring", 1)?;
        return Ok(SigmaSpec::CoverageIgnoring(properties));
    }
    if let Some(rest) = strip_prefix_ci(trimmed, "dep:") {
        let properties = split_properties(rest, "dep", 2)?;
        return Ok(SigmaSpec::Dependency {
            p1: properties[0].clone(),
            p2: properties[1].clone(),
        });
    }
    if let Some(rest) = strip_prefix_ci(trimmed, "symdep:") {
        let properties = split_properties(rest, "symdep", 2)?;
        return Ok(SigmaSpec::SymDependency {
            p1: properties[0].clone(),
            p2: properties[1].clone(),
        });
    }
    if let Some(rest) = strip_prefix_ci(trimmed, "depdisj:") {
        let properties = split_properties(rest, "depdisj", 2)?;
        return Ok(SigmaSpec::DependencyDisjunctive {
            p1: properties[0].clone(),
            p2: properties[1].clone(),
        });
    }
    if trimmed.contains("->") || trimmed.contains('↦') {
        return Ok(SigmaSpec::Custom(parse_rule(trimmed)?));
    }
    Err(CliError::Usage(format!(
        "unknown rule '{trimmed}'; expected cov, sim, cov-ignoring:<props>, dep:<p1>,<p2>, \
         symdep:<p1>,<p2>, depdisj:<p1>,<p2>, or a rule of the language (containing '->')"
    )))
}

fn strip_prefix_ci<'a>(text: &'a str, prefix: &str) -> Option<&'a str> {
    if text.len() >= prefix.len() && text[..prefix.len()].eq_ignore_ascii_case(prefix) {
        Some(&text[prefix.len()..])
    } else {
        None
    }
}

fn split_properties(rest: &str, form: &str, expected: usize) -> Result<Vec<String>, CliError> {
    let properties: Vec<String> = rest
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
        .collect();
    if properties.len() < expected {
        return Err(CliError::Usage(format!(
            "'{form}:' needs at least {expected} comma-separated property IRI(s)"
        )));
    }
    Ok(properties)
}

/// Builds a refinement engine from a `--engine` name and an optional
/// per-instance time limit.
pub fn build_engine(
    name: Option<&str>,
    time_limit: Option<Duration>,
) -> Result<Box<dyn RefinementEngine>, CliError> {
    let ilp_config = IlpEngineConfig {
        time_limit,
        ..IlpEngineConfig::default()
    };
    match name.unwrap_or("hybrid").to_ascii_lowercase().as_str() {
        "hybrid" => Ok(Box::new(HybridEngine::with_engines(
            GreedyEngine::new(),
            IlpEngine::with_config(ilp_config),
        ))),
        "ilp" => Ok(Box::new(IlpEngine::with_config(ilp_config))),
        "greedy" => Ok(Box::new(GreedyEngine::new())),
        other => Err(CliError::Usage(format!(
            "unknown engine '{other}'; expected hybrid, ilp, or greedy"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_rule_names_parse() {
        assert_eq!(parse_sigma_spec("cov").unwrap(), SigmaSpec::Coverage);
        assert_eq!(parse_sigma_spec("Coverage").unwrap(), SigmaSpec::Coverage);
        assert_eq!(parse_sigma_spec(" sim ").unwrap(), SigmaSpec::Similarity);
        assert_eq!(
            parse_sigma_spec("dep:http://ex/a,http://ex/b").unwrap(),
            SigmaSpec::Dependency {
                p1: "http://ex/a".into(),
                p2: "http://ex/b".into()
            }
        );
        assert_eq!(
            parse_sigma_spec("SymDep:http://ex/a, http://ex/b").unwrap(),
            SigmaSpec::SymDependency {
                p1: "http://ex/a".into(),
                p2: "http://ex/b".into()
            }
        );
        assert!(matches!(
            parse_sigma_spec("cov-ignoring:http://ex/type").unwrap(),
            SigmaSpec::CoverageIgnoring(props) if props.len() == 1
        ));
        assert!(matches!(
            parse_sigma_spec("depdisj:http://ex/a,http://ex/b").unwrap(),
            SigmaSpec::DependencyDisjunctive { .. }
        ));
    }

    #[test]
    fn language_rules_parse_as_custom() {
        let spec = parse_sigma_spec("c = c -> val(c) = 1").unwrap();
        assert!(matches!(spec, SigmaSpec::Custom(_)));
    }

    #[test]
    fn bad_rules_are_rejected_with_guidance() {
        let err = parse_sigma_spec("covfefe").unwrap_err();
        assert!(err.to_string().contains("expected cov"));
        let err = parse_sigma_spec("dep:onlyone").unwrap_err();
        assert!(err.to_string().contains("at least 2"));
        let err = parse_sigma_spec("val(c = 1 ->").unwrap_err();
        assert!(matches!(err, CliError::Rule(_)));
    }

    #[test]
    fn engines_are_selected_by_name() {
        assert_eq!(build_engine(None, None).unwrap().name(), "hybrid");
        assert_eq!(build_engine(Some("ilp"), None).unwrap().name(), "ilp");
        assert_eq!(
            build_engine(Some("GREEDY"), Some(Duration::from_secs(1)))
                .unwrap()
                .name(),
            "greedy"
        );
        assert!(build_engine(Some("cplex"), None).is_err());
    }
}
