//! Parsing command-line rule and engine specifications.

use std::time::Duration;

use strudel_core::engine::{
    GreedyEngine, HybridEngine, IlpEngine, IlpEngineConfig, RefinementEngine,
};
use strudel_core::sigma::{parse_spec, SigmaSpec, SpecParseError};

use crate::error::CliError;

/// Parses a `--rule` argument into a structuredness function.
///
/// Accepted forms:
///
/// * `cov` / `coverage` — σ_Cov,
/// * `sim` / `similarity` — σ_Sim,
/// * `cov-ignoring:<p1>,<p2>,…` — σ_Cov ignoring the listed property IRIs,
/// * `dep:<p1>,<p2>` — σ_Dep[p1, p2],
/// * `symdep:<p1>,<p2>` — σ_SymDep[p1, p2],
/// * `depdisj:<p1>,<p2>` — the disjunctive dependency variant,
/// * anything containing `->` — a rule of the language, parsed verbatim.
pub fn parse_sigma_spec(text: &str) -> Result<SigmaSpec, CliError> {
    parse_spec(text).map_err(|err| match err {
        SpecParseError::Rule(rule_err) => CliError::Rule(rule_err),
        other => CliError::Usage(other.to_string()),
    })
}

/// Parses a `--time-limit` argument (seconds, fractional allowed) into a
/// duration, rejecting negative, NaN, and infinite values with a usage
/// error instead of letting `Duration::from_secs_f64` panic.
pub fn parse_time_limit(parsed: &crate::args::ParsedArgs) -> Result<Option<Duration>, CliError> {
    match parsed.option_parsed::<f64>("time-limit")? {
        None => Ok(None),
        Some(seconds) if seconds.is_finite() && seconds >= 0.0 => {
            Ok(Some(Duration::from_secs_f64(seconds)))
        }
        Some(seconds) => Err(CliError::Usage(format!(
            "invalid value '{seconds}' for --time-limit: must be a non-negative number of seconds"
        ))),
    }
}

/// Builds a refinement engine from a `--engine` name and an optional
/// per-instance time limit.
pub fn build_engine(
    name: Option<&str>,
    time_limit: Option<Duration>,
) -> Result<Box<dyn RefinementEngine>, CliError> {
    let ilp_config = IlpEngineConfig {
        time_limit,
        ..IlpEngineConfig::default()
    };
    match name.unwrap_or("hybrid").to_ascii_lowercase().as_str() {
        "hybrid" => Ok(Box::new(HybridEngine::with_engines(
            GreedyEngine::new(),
            IlpEngine::with_config(ilp_config),
        ))),
        "ilp" => Ok(Box::new(IlpEngine::with_config(ilp_config))),
        "greedy" => Ok(Box::new(GreedyEngine::new())),
        other => Err(CliError::Usage(format!(
            "unknown engine '{other}'; expected hybrid, ilp, or greedy"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_rule_names_parse() {
        assert_eq!(parse_sigma_spec("cov").unwrap(), SigmaSpec::Coverage);
        assert_eq!(parse_sigma_spec("Coverage").unwrap(), SigmaSpec::Coverage);
        assert_eq!(parse_sigma_spec(" sim ").unwrap(), SigmaSpec::Similarity);
        assert_eq!(
            parse_sigma_spec("dep:http://ex/a,http://ex/b").unwrap(),
            SigmaSpec::Dependency {
                p1: "http://ex/a".into(),
                p2: "http://ex/b".into()
            }
        );
        assert_eq!(
            parse_sigma_spec("SymDep:http://ex/a, http://ex/b").unwrap(),
            SigmaSpec::SymDependency {
                p1: "http://ex/a".into(),
                p2: "http://ex/b".into()
            }
        );
        assert!(matches!(
            parse_sigma_spec("cov-ignoring:http://ex/type").unwrap(),
            SigmaSpec::CoverageIgnoring(props) if props.len() == 1
        ));
        assert!(matches!(
            parse_sigma_spec("depdisj:http://ex/a,http://ex/b").unwrap(),
            SigmaSpec::DependencyDisjunctive { .. }
        ));
    }

    #[test]
    fn language_rules_parse_as_custom() {
        let spec = parse_sigma_spec("c = c -> val(c) = 1").unwrap();
        assert!(matches!(spec, SigmaSpec::Custom(_)));
    }

    #[test]
    fn bad_rules_are_rejected_with_guidance() {
        let err = parse_sigma_spec("covfefe").unwrap_err();
        assert!(err.to_string().contains("expected cov"));
        let err = parse_sigma_spec("dep:onlyone").unwrap_err();
        assert!(err.to_string().contains("at least 2"));
        let err = parse_sigma_spec("val(c = 1 ->").unwrap_err();
        assert!(matches!(err, CliError::Rule(_)));
    }

    #[test]
    fn engines_are_selected_by_name() {
        assert_eq!(build_engine(None, None).unwrap().name(), "hybrid");
        assert_eq!(build_engine(Some("ilp"), None).unwrap().name(), "ilp");
        assert_eq!(
            build_engine(Some("GREEDY"), Some(Duration::from_secs(1)))
                .unwrap()
                .name(),
            "greedy"
        );
        assert!(build_engine(Some("cplex"), None).is_err());
    }
}
