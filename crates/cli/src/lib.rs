//! # strudel-cli
//!
//! The `strudel` command-line tool: measure the structuredness of RDF
//! documents, survey their explicit sorts, discover sort refinements, analyse
//! property dependencies, generate calibrated synthetic datasets, and get
//! schema-guided storage layout advice — all from the shell.
//!
//! The crate exposes every command as a library function returning the report
//! text, so the binary is a thin wrapper and everything is testable without
//! spawning processes:
//!
//! ```
//! let help = strudel_cli::run(&["help".to_owned()]).unwrap();
//! assert!(help.contains("strudel refine"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;
pub mod io;
pub mod spec;

pub use commands::{run, usage};
pub use error::CliError;
