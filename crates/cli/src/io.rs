//! Loading and saving RDF documents for the CLI.

use std::fs;
use std::path::Path;

use strudel_rdf::graph::Graph;
use strudel_rdf::matrix::PropertyStructureView;
use strudel_rdf::ntriples::{parse_ntriples, write_ntriples};
use strudel_rdf::signature::SignatureView;
use strudel_rdf::turtle::parse_turtle;

use crate::error::CliError;

/// Loads an RDF graph from a file. `.ttl`/`.turtle` files are parsed as
/// Turtle, everything else as N-Triples (with a Turtle fallback, since many
/// `.rdf`/`.txt` dumps are actually Turtle).
pub fn load_graph(path: &str) -> Result<Graph, CliError> {
    let text = fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })?;
    let is_turtle = Path::new(path)
        .extension()
        .and_then(|ext| ext.to_str())
        .map(|ext| ext.eq_ignore_ascii_case("ttl") || ext.eq_ignore_ascii_case("turtle"))
        .unwrap_or(false);
    if is_turtle {
        return parse_turtle(&text).map_err(|source| CliError::Parse {
            path: path.to_owned(),
            source,
        });
    }
    match parse_ntriples(&text) {
        Ok(graph) => Ok(graph),
        Err(ntriples_error) => parse_turtle(&text).map_err(|_| CliError::Parse {
            path: path.to_owned(),
            source: ntriples_error,
        }),
    }
}

/// Writes a graph to a file as N-Triples.
pub fn save_ntriples(path: &str, graph: &Graph) -> Result<(), CliError> {
    fs::write(path, write_ntriples(graph)).map_err(|source| CliError::Io {
        path: path.to_owned(),
        source,
    })
}

/// Builds the property-structure and signature views of a graph, optionally
/// restricted to one explicit sort, excluding `rdf:type` as the paper does.
pub fn views_of(
    graph: &Graph,
    sort: Option<&str>,
) -> Result<(PropertyStructureView, SignatureView), CliError> {
    let matrix = match sort {
        Some(sort_iri) => PropertyStructureView::from_sort(graph, sort_iri, true)?,
        None => PropertyStructureView::from_graph(graph, true),
    };
    if matrix.subject_count() == 0 {
        return Err(CliError::EmptyDataset(match sort {
            Some(sort_iri) => format!("sort <{sort_iri}>"),
            None => "the dataset".to_owned(),
        }));
    }
    let view = SignatureView::from_matrix(&matrix);
    Ok((matrix, view))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("strudel-cli-io-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn ntriples_round_trip_through_files() {
        let mut graph = Graph::new();
        graph.insert_iri_triple("http://ex/s", "http://ex/p", "http://ex/o");
        graph.insert_type("http://ex/s", "http://ex/Thing");
        let path = temp_path("roundtrip.nt");
        save_ntriples(path.to_str().unwrap(), &graph).unwrap();
        let loaded = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.len(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn turtle_files_are_detected_by_extension() {
        let path = temp_path("doc.ttl");
        fs::write(
            &path,
            "@prefix ex: <http://ex/> .\nex:s a ex:Thing ; ex:p \"v\" .\n",
        )
        .unwrap();
        let graph = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(graph.len(), 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_files_and_garbage_are_reported() {
        let err = load_graph("/no/such/strudel-file.nt").unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));

        let path = temp_path("garbage.nt");
        fs::write(&path, "this is not RDF at all").unwrap();
        let err = load_graph(path.to_str().unwrap()).unwrap_err();
        assert!(matches!(err, CliError::Parse { .. }));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn views_respect_the_sort_filter() {
        let mut graph = Graph::new();
        graph.insert_type("http://ex/a", "http://ex/Person");
        graph.insert_iri_triple("http://ex/a", "http://ex/knows", "http://ex/b");
        graph.insert_iri_triple("http://ex/b", "http://ex/likes", "http://ex/a");

        let (matrix, view) = views_of(&graph, None).unwrap();
        assert_eq!(matrix.subject_count(), 2);
        assert_eq!(view.subject_count(), 2);

        let (matrix, _) = views_of(&graph, Some("http://ex/Person")).unwrap();
        assert_eq!(matrix.subject_count(), 1);

        let err = views_of(&graph, Some("http://ex/Nothing")).unwrap_err();
        assert!(
            matches!(err, CliError::Model(_)) || matches!(err, CliError::EmptyDataset(_)),
            "unexpected error {err:?}"
        );
    }
}
