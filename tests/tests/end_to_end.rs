//! End-to-end pipeline tests: RDF text → graph → views → structuredness →
//! refinement, across all the crates of the workspace.

use strudel_core::prelude::*;
use strudel_datagen::{materialize_graph, synthetic_sort, SyntheticSortConfig};
use strudel_rdf::prelude::*;

const SORT_IRI: &str = "http://example.org/Product";

/// Materialize a synthetic dataset to triples, serialize it as N-Triples,
/// parse it back, and verify that structuredness and refinement results are
/// identical to those computed on the original signature view.
#[test]
fn materialized_graph_round_trips_through_ntriples() {
    let original = synthetic_sort(
        &SyntheticSortConfig {
            subjects: 300,
            properties: 6,
            signatures: 10,
            ..SyntheticSortConfig::default()
        },
        99,
    );
    let graph = materialize_graph(&original, SORT_IRI, "http://example.org/", 5);
    let text = write_ntriples(&graph);
    let parsed = parse_ntriples(&text).expect("serializer output parses");
    let matrix = PropertyStructureView::from_sort(&parsed, SORT_IRI, true).unwrap();
    let view = SignatureView::from_matrix(&matrix);

    assert_eq!(view.subject_count(), original.subject_count());
    assert_eq!(view.signature_count(), original.signature_count());
    assert_eq!(
        SigmaSpec::Coverage.evaluate(&view).unwrap(),
        SigmaSpec::Coverage.evaluate(&original).unwrap()
    );
    assert_eq!(
        SigmaSpec::Similarity.evaluate(&view).unwrap(),
        SigmaSpec::Similarity.evaluate(&original).unwrap()
    );

    // The refinement decision is identical on both representations.
    let engine = IlpEngine::new();
    let theta = Ratio::new(4, 5);
    let from_original =
        exists_sort_refinement(&original, &SigmaSpec::Coverage, theta, 2, &engine).unwrap();
    let from_parsed =
        exists_sort_refinement(&view, &SigmaSpec::Coverage, theta, 2, &engine).unwrap();
    assert_eq!(from_original, from_parsed);
}

/// A Turtle document flows through the whole API surface: typed subgraph
/// extraction, views, rule parsing, evaluation, refinement and rendering.
#[test]
fn turtle_to_refinement_pipeline() {
    let doc = r#"
        @prefix ex: <http://example.org/> .
        ex:p1 a ex:Product ; ex:title "a" ; ex:price 10 ; ex:brand ex:Acme .
        ex:p2 a ex:Product ; ex:title "b" ; ex:price 12 ; ex:brand ex:Acme .
        ex:p3 a ex:Product ; ex:title "c" ; ex:price 9 .
        ex:p4 a ex:Product ; ex:title "d" ; ex:price 20 ; ex:brand ex:Bolt ; ex:warranty "2y" .
        ex:p5 a ex:Product ; ex:title "e" .
        ex:other a ex:Store ; ex:title "not a product" .
    "#;
    let graph = parse_turtle(doc).expect("valid turtle");
    assert_eq!(
        graph
            .subjects_of_sort_named("http://example.org/Product")
            .len(),
        5
    );

    let matrix =
        PropertyStructureView::from_sort(&graph, "http://example.org/Product", true).unwrap();
    assert_eq!(matrix.subject_count(), 5);
    let view = SignatureView::from_matrix(&matrix);
    assert_eq!(view.signature_count(), 4);

    // A custom rule written in the textual syntax evaluates like σ_Cov.
    let rule = strudel_rules::parser::parse_rule("c = c -> val(c) = 1").unwrap();
    let custom = SigmaSpec::Custom(rule);
    assert_eq!(
        custom.evaluate(&view).unwrap(),
        SigmaSpec::Coverage.evaluate(&view).unwrap()
    );

    // Split into two implicit sorts and render the result.
    let engine = HybridEngine::new();
    let result = highest_theta(
        &view,
        &SigmaSpec::Coverage,
        2,
        &engine,
        &HighestThetaOptions::default(),
    )
    .unwrap();
    let refinement = result
        .refinement
        .expect("feasible at the starting threshold");
    refinement.validate(&view).unwrap();
    let rendering = render_refinement(&view, &refinement, &RenderOptions::default());
    assert!(rendering.contains("sort 0"));
}

/// The dependency analysis and the classification helper work directly on
/// parsed data.
#[test]
fn dependency_and_classification_on_parsed_data() {
    let mut graph = Graph::new();
    for i in 0..20 {
        let subject = format!("http://example.org/c{i}");
        graph.insert_type(&subject, "http://example.org/Company");
        graph.insert_literal_triple(&subject, "http://example.org/name", Literal::simple("x"));
        graph.insert_literal_triple(
            &subject,
            "http://example.org/industry",
            Literal::simple("y"),
        );
    }
    for i in 0..10 {
        let subject = format!("http://example.org/p{i}");
        graph.insert_type(&subject, "http://example.org/Company");
        graph.insert_literal_triple(&subject, "http://example.org/name", Literal::simple("x"));
    }
    let matrix =
        PropertyStructureView::from_sort(&graph, "http://example.org/Company", true).unwrap();
    let view = SignatureView::from_matrix(&matrix);
    let name = view.property_index("http://example.org/name").unwrap();
    let industry = view.property_index("http://example.org/industry").unwrap();
    let matrix = dependency_matrix(&view, &[name, industry]);
    // Everyone with an industry has a name; 2/3 of named subjects have an industry.
    assert_eq!(matrix[1][0], Ratio::ONE);
    assert_eq!(matrix[0][1], Ratio::new(2, 3));

    // Classify: signatures with `industry` are the positive class.
    let positive: Vec<bool> = view
        .entries()
        .iter()
        .map(|entry| entry.signature.contains(industry))
        .collect();
    let refinement = SortRefinement::from_assignment(
        &view,
        &SigmaSpec::Coverage,
        Ratio::ZERO,
        &(0..view.signature_count()).collect::<Vec<_>>(),
        view.signature_count(),
    )
    .unwrap();
    let outcome = evaluate_binary_split(&view, &refinement, &positive);
    assert_eq!(outcome.recall(), 1.0);
    assert_eq!(outcome.true_positives, 20);
}
