//! Failure-injection tests: malformed inputs and exhausted budgets must
//! produce typed errors or honest "undecided" answers — never panics, wrong
//! answers, or silent truncation.

use std::time::Duration;

use strudel_core::prelude::*;
use strudel_integration::small_persons_view;
use strudel_rdf::prelude::*;
use strudel_rules::error::{EvalError, RuleError};
use strudel_rules::eval::{EvalConfig, Evaluator};
use strudel_rules::parser::parse_rule;

#[test]
fn malformed_rdf_inputs_are_rejected_with_positions() {
    let cases = [
        "<http://s> <http://p> .\n",                // missing object
        "<http://s> <http://p> <http://o>\n",       // missing dot
        "_:blank <http://p> <http://o> .\n",        // blank node subject
        "<http://s> <http://p> \"unterminated .\n", // unterminated literal
        "<http://s> <http://p> \"x\"^^missing .\n", // malformed datatype
    ];
    for case in cases {
        let err = parse_ntriples(case).expect_err(case);
        assert!(err.line >= 1);
        assert!(!err.message.is_empty());
    }
    let turtle_cases = [
        "ex:a ex:b ex:c .",                               // undeclared prefix
        "@prefix ex: <http://e/> .\nex:a ex:p [ ] .",     // anonymous node
        "@prefix ex: <http://e/> .\nex:a ex:p ex:b ,, .", // stray comma
    ];
    for case in turtle_cases {
        assert!(parse_turtle(case).is_err(), "accepted: {case}");
    }
}

#[test]
fn malformed_rules_are_rejected() {
    assert!(matches!(
        parse_rule("c = c -> val(d) = 1"),
        Err(RuleError::UnboundConsequentVariable(_))
    ));
    assert!(matches!(parse_rule("c = c"), Err(RuleError::Parse { .. })));
    assert!(matches!(
        parse_rule("val(c) = 7 -> val(c) = 1"),
        Err(RuleError::Parse { .. })
    ));
}

#[test]
fn subject_constant_rules_are_rejected_by_the_signature_evaluator() {
    let view = small_persons_view();
    let rule = parse_rule("subj(c) = <http://example.org/alice> -> val(c) = 1").unwrap();
    assert!(matches!(
        Evaluator::new(&view).sigma(&rule),
        Err(EvalError::SubjectConstantUnsupported)
    ));
    // But the refinement layer surfaces it as a typed error, not a panic.
    let err = IlpEngine::new()
        .refine(&view, &SigmaSpec::Custom(rule), 2, Ratio::new(1, 2))
        .unwrap_err();
    assert!(matches!(err, RefineError::Eval(_)));
}

#[test]
fn evaluation_budgets_abort_instead_of_hanging() {
    let view = small_persons_view();
    let rule = strudel_rules::builtin::similarity();
    let evaluator = Evaluator::with_config(
        &view,
        EvalConfig {
            max_rough_assignments: 2,
        },
    );
    assert!(matches!(
        evaluator.sigma(&rule),
        Err(EvalError::TooManyRoughAssignments { .. })
    ));
}

#[test]
fn invalid_refinement_parameters_are_rejected() {
    let view = small_persons_view();
    let engine = IlpEngine::new();
    assert!(matches!(
        engine.refine(&view, &SigmaSpec::Coverage, 0, Ratio::new(1, 2)),
        Err(RefineError::ZeroSorts)
    ));
    assert!(matches!(
        engine.refine(&view, &SigmaSpec::Coverage, 2, Ratio::new(3, 2)),
        Err(RefineError::ThresholdOutOfRange(_))
    ));
    let empty = SignatureView::from_counts(vec!["http://ex/p".into()], vec![]).unwrap();
    assert!(matches!(
        engine.refine(&empty, &SigmaSpec::Coverage, 2, Ratio::new(1, 2)),
        Err(RefineError::EmptyDataset)
    ));
}

#[test]
fn exhausted_solver_budgets_return_unknown_not_wrong_answers() {
    let view = small_persons_view();
    // A zero-ish time limit: the solver cannot possibly decide anything hard.
    let engine = IlpEngine::with_time_limit(Duration::from_nanos(1));
    let outcome = engine
        .refine(&view, &SigmaSpec::Coverage, 2, Ratio::new(95, 100))
        .unwrap();
    match outcome {
        // Either it got lucky before the deadline check (then the answer must
        // be genuine), or it reports Unknown. Never a wrong claim.
        RefineOutcome::Refinement(refinement) => {
            assert!(refinement.min_sigma() >= Ratio::new(95, 100));
        }
        RefineOutcome::Unknown | RefineOutcome::Infeasible => {}
    }

    // A search driven by an exhausted engine reports hit_budget instead of
    // pretending the sweep completed.
    let result = highest_theta(
        &view,
        &SigmaSpec::Coverage,
        2,
        &engine,
        &HighestThetaOptions::default(),
    )
    .unwrap();
    if result.steps.iter().any(|step| step.feasible.is_none()) {
        assert!(result.hit_budget);
    }
}

#[test]
fn oversized_exhaustive_instances_are_refused_not_attempted() {
    let view = strudel_datagen::dbpedia_persons();
    let err = ExhaustiveEngine::new()
        .refine(&view, &SigmaSpec::Coverage, 3, Ratio::new(1, 2))
        .unwrap_err();
    assert!(matches!(err, RefineError::InstanceTooLarge { .. }));
}
