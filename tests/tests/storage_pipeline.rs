//! Cross-crate integration: Turtle → views → sort refinement → refinement
//! materialisation (`strudel-core`) → storage layouts and workload costs
//! (`strudel-storage`).
//!
//! The chain exercised here is the full "so what" of the paper: measure the
//! structuredness of raw RDF, refine the sort, and verify that the refinement
//! actually buys a better physical design (dense property tables, cheaper
//! scans) while answering queries identically to layouts that ignore the
//! schema.

use strudel_core::prelude::*;
use strudel_datagen::{dbpedia_persons_scaled, degrade_view, materialize_graph, NoiseConfig};
use strudel_rdf::prelude::*;
use strudel_storage::prelude::*;

const PERSON: &str = "http://xmlns.com/foaf/0.1/Person";

/// A hand-written Turtle document with an obvious alive/dead split.
const PERSONS_TTL: &str = r#"
    @prefix ex:   <http://example.org/> .
    @prefix foaf: <http://xmlns.com/foaf/0.1/> .

    ex:ada    a foaf:Person ; foaf:name "Ada"    ; ex:birthDate "1815" ; ex:deathDate "1852" ; ex:deathPlace ex:London .
    ex:grace  a foaf:Person ; foaf:name "Grace"  ; ex:birthDate "1906" ; ex:deathDate "1992" ; ex:deathPlace ex:Arlington .
    ex:alan   a foaf:Person ; foaf:name "Alan"   ; ex:birthDate "1912" ; ex:deathDate "1954" ; ex:deathPlace ex:Wilmslow .
    ex:barb   a foaf:Person ; foaf:name "Barbara"; ex:birthDate "1939" .
    ex:don    a foaf:Person ; foaf:name "Donald" ; ex:birthDate "1938" .
    ex:leslie a foaf:Person ; foaf:name "Leslie" ; ex:birthDate "1941" .
    ex:margo  a foaf:Person ; foaf:name "Margaret" ; ex:birthDate "1936" .
    ex:tim    a foaf:Person ; foaf:name "Tim"    ; ex:birthDate "1955" .
"#;

fn refine_k2(view: &SignatureView) -> SortRefinement {
    let engine = HybridEngine::new();
    highest_theta(
        view,
        &SigmaSpec::Coverage,
        2,
        &engine,
        &HighestThetaOptions::default(),
    )
    .expect("search completes")
    .refinement
    .expect("a refinement exists at the starting threshold")
}

#[test]
fn turtle_to_property_tables_round_trip() {
    let graph = parse_turtle(PERSONS_TTL).expect("the document is valid Turtle");
    let matrix = PropertyStructureView::from_sort(&graph, PERSON, true).unwrap();
    let view = SignatureView::from_matrix(&matrix);
    let refinement = refine_k2(&view);
    assert_eq!(refinement.k(), 2);
    refinement.validate(&view).expect("the refinement is valid");

    // The refinement separates the death-record signature from the rest.
    let death_col = view.property_index("http://example.org/deathDate").unwrap();
    for sort in &refinement.sorts {
        let sub = view.subset(&sort.signatures);
        let with_death = sub.property_subject_count(death_col);
        assert!(
            with_death == 0 || with_death == sub.subject_count(),
            "each implicit sort is homogeneous w.r.t. deathDate"
        );
    }

    // Materialise it as property tables and compare against a triple store.
    let config = LayoutConfig::excluding_rdf_type();
    let typed = graph.typed_subgraph(PERSON);
    let triple_store = TripleStoreLayout::build(&typed, &config);
    let horizontal = HorizontalLayout::build(&typed, &config);
    let tables =
        PropertyTablesLayout::from_refinement(&typed, &matrix, &view, &refinement, &config)
            .unwrap();

    // Dense tables: the alive/dead split leaves no NULLs at all.
    assert_eq!(tables.storage_stats().null_cells, 0);
    assert!(horizontal.storage_stats().null_cells > 0);

    // Same answers everywhere.
    let layouts: [&dyn Layout; 3] = [&triple_store, &horizontal, &tables];
    let queries = generate_workload(&typed, &WorkloadConfig::default());
    let summaries = run_workload(&layouts, &queries).expect("layouts agree");
    assert_eq!(summaries.len(), 3);

    // The property tables never scan more cells than the horizontal table.
    let horizontal_cells = summaries[1].total.cells_scanned;
    let tables_cells = summaries[2].total.cells_scanned;
    assert!(tables_cells <= horizontal_cells);
}

#[test]
fn annotation_then_split_agree_on_membership() {
    let graph = parse_turtle(PERSONS_TTL).unwrap();
    let matrix = PropertyStructureView::from_sort(&graph, PERSON, true).unwrap();
    let view = SignatureView::from_matrix(&matrix);
    let refinement = refine_k2(&view);

    let mut annotated = graph.clone();
    let summary = annotate_refinement(
        &mut annotated,
        &matrix,
        &view,
        &refinement,
        "http://example.org/Person/refined",
    )
    .unwrap();
    let parts = split_by_refinement(&graph, &matrix, &view, &refinement).unwrap();
    assert_eq!(parts.len(), summary.sort_iris.len());

    // The subjects declared of each minted sort are exactly the subjects of
    // the corresponding split graph.
    for (iri, part) in summary.sort_iris.iter().zip(&parts) {
        let mut declared: Vec<String> = annotated
            .subjects_of_sort_named(iri)
            .into_iter()
            .map(|s| annotated.iri(s).to_owned())
            .collect();
        declared.sort();
        let mut split: Vec<String> = part
            .subjects()
            .into_iter()
            .map(|s| part.iri(s).to_owned())
            .collect();
        split.sort();
        assert_eq!(declared, split);
    }

    // Split graphs cover every Person triple exactly once.
    let typed = graph.typed_subgraph(PERSON);
    let total: usize = parts.iter().map(Graph::len).sum();
    assert_eq!(total, typed.len());
}

#[test]
fn advisor_prefers_property_tables_on_structured_data_and_erosion_hurts_the_wide_table() {
    // Calibrated DBpedia Persons, scaled down and materialised.
    let view = dbpedia_persons_scaled(2_000);
    let graph = materialize_graph(&view, PERSON, "http://example.org/p/", 99);
    let report = advise(
        &graph,
        Some(PERSON),
        &AdvisorConfig::coverage_with_k(2),
        &HybridEngine::new(),
    )
    .unwrap();

    // The identity the storage crate is built around: horizontal fill factor
    // equals σ_Cov of the dataset.
    let horizontal = report.summary("horizontal").unwrap();
    let fill = horizontal.storage.fill_factor().unwrap();
    assert!((fill - report.dataset_sigma.to_f64()).abs() < 1e-9);

    // Property tables derived from the refinement waste fewer cells than the
    // single wide table.
    let tables = report.summary("property tables").unwrap();
    assert!(tables.storage.null_cells < horizontal.storage.null_cells);
    assert!(tables.total.cells_scanned <= horizontal.total.cells_scanned);

    // Eroding structuredness increases the wide table's wasted cells.
    let eroded = degrade_view(&view, &NoiseConfig::erosion(0.4, 3));
    let eroded_graph = materialize_graph(&eroded, PERSON, "http://example.org/e/", 3);
    let config = LayoutConfig::excluding_rdf_type();
    let clean_nulls = HorizontalLayout::build(&graph.typed_subgraph(PERSON), &config)
        .storage_stats()
        .null_cells;
    let eroded_nulls = HorizontalLayout::build(&eroded_graph.typed_subgraph(PERSON), &config)
        .storage_stats()
        .null_cells;
    assert!(eroded_nulls > clean_nulls);
}
