//! Integration tests of the NP-hardness reduction (Theorem 5.1 / Appendix A)
//! on the graph families provided by `strudel-datagen`.

use strudel_core::prelude::*;
use strudel_datagen::UndirectedGraph;

fn instance_of(graph: &UndirectedGraph) -> ReductionInstance {
    reduction_instance(graph.node_count(), graph.edges())
}

#[test]
fn proper_colorings_of_colorable_graphs_reach_threshold_one() {
    for graph in [
        UndirectedGraph::triangle(),
        UndirectedGraph::path4(),
        UndirectedGraph::c5(),
    ] {
        let coloring = graph
            .find_3_coloring()
            .expect("these graphs are 3-colorable");
        assert!(graph.is_proper_coloring(&coloring));
        let instance = instance_of(&graph);
        assert!(
            coloring_achieves_threshold_one(&instance, &coloring),
            "proper coloring of {graph:?} must give σ_r0 = 1 on every part"
        );
    }
}

#[test]
fn improper_colorings_fail_threshold_one() {
    // For the triangle, any assignment using fewer than 3 colors places two
    // adjacent nodes together and must fail.
    let graph = UndirectedGraph::triangle();
    let instance = instance_of(&graph);
    for coloring in [[0usize, 0, 1], [0, 1, 1], [2, 2, 2]] {
        assert!(
            !coloring_achieves_threshold_one(&instance, &coloring),
            "improper coloring {coloring:?} must not reach threshold 1"
        );
    }
}

#[test]
fn non_three_colorable_graphs_fail_for_every_candidate_coloring() {
    // K4 has chromatic number 4: every assignment of 3 colors to its nodes
    // leaves two adjacent nodes sharing a color, so no candidate partition of
    // the reduction instance reaches threshold 1. Node 0's color can be fixed
    // to 0 by symmetry, leaving 3^3 = 27 candidates to check exhaustively.
    let graph = UndirectedGraph::k4();
    assert!(graph.find_3_coloring().is_none());
    let instance = instance_of(&graph);
    let n = graph.node_count();
    for code in 0..3usize.pow((n - 1) as u32) {
        let mut coloring = vec![0usize];
        let mut rest = code;
        for _ in 1..n {
            coloring.push(rest % 3);
            rest /= 3;
        }
        assert!(
            !coloring_achieves_threshold_one(&instance, &coloring),
            "K4 is not 3-colorable, but {coloring:?} reached threshold 1"
        );
    }
}

#[test]
fn random_graphs_agree_with_the_search_based_decision() {
    // For a few seeded random graphs, the reduction's verdict on the
    // brute-force coloring (if any) matches colorability.
    for seed in 0..4u64 {
        let graph = UndirectedGraph::random(5, 0.5, seed);
        let instance = instance_of(&graph);
        match graph.find_3_coloring() {
            Some(coloring) => {
                assert!(coloring_achieves_threshold_one(&instance, &coloring));
            }
            None => {
                // Not 3-colorable: spot-check a handful of candidate
                // colorings; none may reach threshold 1.
                for code in [0usize, 7, 13, 26, 80] {
                    let mut coloring = Vec::with_capacity(5);
                    let mut rest = code;
                    for _ in 0..5 {
                        coloring.push(rest % 3);
                        rest /= 3;
                    }
                    assert!(!coloring_achieves_threshold_one(&instance, &coloring));
                }
            }
        }
    }
}

#[test]
fn the_rule_r0_is_expressible_and_purely_structural() {
    let rule = rule_r0();
    assert_eq!(rule.variables().len(), 11);
    // The paper stresses that r0 avoids subj(c) = constant atoms: the
    // structuredness of a graph should not depend on particular subjects.
    assert!(!rule.mentions_subject_constant());
    // Round-trips through the textual syntax.
    let reparsed = strudel_rules::parser::parse_rule(&rule.to_string()).unwrap();
    assert_eq!(reparsed.variables().len(), 11);
}
