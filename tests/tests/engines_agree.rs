//! Cross-engine agreement: the ILP engine (the paper's approach, via the
//! Section 6 encoding and the pure-Rust solver) must agree with the
//! exhaustive oracle on every random small instance, and the hybrid engine's
//! positive answers must be genuine.

// Needs the external `proptest` crate: compiled only with `--features proptest`
// (unavailable in offline builds; see the manifest note).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use strudel_core::prelude::*;
use strudel_rdf::signature::SignatureView;

fn view_strategy() -> impl Strategy<Value = SignatureView> {
    proptest::collection::vec(
        (proptest::collection::vec(0usize..4, 1..4), 1usize..8),
        2..6,
    )
    .prop_map(|signatures| {
        SignatureView::from_counts(
            (0..4).map(|i| format!("http://ex/p{i}")).collect(),
            signatures,
        )
        .unwrap()
    })
    .prop_filter("at least two signatures", |view| {
        view.signature_count() >= 2
    })
}

fn spec_strategy() -> impl Strategy<Value = SigmaSpec> {
    (0usize..4, 0usize..4, 0usize..4).prop_map(|(kind, a, b)| match kind {
        0 => SigmaSpec::Coverage,
        1 => SigmaSpec::Similarity,
        2 => SigmaSpec::Dependency {
            p1: format!("http://ex/p{a}"),
            p2: format!("http://ex/p{b}"),
        },
        _ => SigmaSpec::SymDependency {
            p1: format!("http://ex/p{a}"),
            p2: format!("http://ex/p{b}"),
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `ExistsSortRefinement` answered through the ILP encoding matches the
    /// brute-force oracle, for every rule family, k and θ.
    #[test]
    fn ilp_matches_exhaustive(
        view in view_strategy(),
        spec in spec_strategy(),
        k in 1usize..4,
        theta_percent in 0u32..=100,
    ) {
        let theta = Ratio::new(i128::from(theta_percent), 100);
        let ilp = exists_sort_refinement(&view, &spec, theta, k, &IlpEngine::new()).unwrap();
        let oracle = exists_sort_refinement(&view, &spec, theta, k, &ExhaustiveEngine::new()).unwrap();
        prop_assert_eq!(ilp, oracle, "spec {} k {} θ {}", spec.name(), k, theta);
    }

    /// Any refinement returned by any engine validates: partition correct,
    /// signatures closed, threshold met.
    #[test]
    fn returned_refinements_validate(
        view in view_strategy(),
        spec in spec_strategy(),
        k in 1usize..4,
        theta_percent in 0u32..=100,
    ) {
        let theta = Ratio::new(i128::from(theta_percent), 100);
        let engines: Vec<Box<dyn RefinementEngine>> = vec![
            Box::new(IlpEngine::new()),
            Box::new(GreedyEngine::new()),
            Box::new(HybridEngine::new()),
        ];
        for engine in &engines {
            if let RefineOutcome::Refinement(refinement) =
                engine.refine(&view, &spec, k, theta).unwrap()
            {
                prop_assert!(refinement.validate(&view).is_ok(), "{} returned an invalid refinement", engine.name());
                prop_assert!(refinement.min_sigma() >= theta);
                prop_assert!(refinement.k() <= k);
            }
        }
    }

    /// The greedy engine never claims infeasibility, and the hybrid engine
    /// gives exactly the ILP answer.
    #[test]
    fn hybrid_equals_ilp(
        view in view_strategy(),
        k in 1usize..3,
        theta_percent in 50u32..=100,
    ) {
        let theta = Ratio::new(i128::from(theta_percent), 100);
        let spec = SigmaSpec::Coverage;
        let hybrid = exists_sort_refinement(&view, &spec, theta, k, &HybridEngine::new()).unwrap();
        let ilp = exists_sort_refinement(&view, &spec, theta, k, &IlpEngine::new()).unwrap();
        prop_assert_eq!(hybrid, ilp);
        let greedy = exists_sort_refinement(&view, &spec, theta, k, &GreedyEngine::new()).unwrap();
        prop_assert_ne!(greedy, Some(false));
    }

    /// Feasibility is monotone in k and antitone in θ (a structural sanity
    /// property of the decision problem itself).
    #[test]
    fn feasibility_monotonicity(view in view_strategy(), theta_percent in 0u32..=100) {
        let theta = Ratio::new(i128::from(theta_percent), 100);
        let engine = IlpEngine::new();
        let spec = SigmaSpec::Coverage;
        let mut previous = None;
        for k in 1..=3usize {
            let answer = exists_sort_refinement(&view, &spec, theta, k, &engine).unwrap().unwrap();
            if let Some(previous_answer) = previous {
                // Once feasible, larger k stays feasible.
                if previous_answer {
                    prop_assert!(answer);
                }
            }
            previous = Some(answer);
        }
        // θ = 0 is always feasible; θ above the singleton bound may not be.
        let trivially = exists_sort_refinement(&view, &spec, Ratio::ZERO, 1, &engine).unwrap();
        prop_assert_eq!(trivially, Some(true));
    }
}
