//! End-to-end client/server integration: a real `strudel-server` on a real
//! TCP port, driven by concurrent clients, proving the acceptance criteria
//! of the service —
//!
//! * concurrent TCP clients are served correctly,
//! * a repeated identical `refine` request is answered from the cache,
//!   observable through the `status` counters,
//! * the cold and the cached answer are **byte-identical**,
//! * the answer agrees with solving the same instance in-process.

use std::thread;

use strudel_core::prelude::*;
use strudel_integration::small_persons_view;
use strudel_rules::prelude::Ratio;
use strudel_server::prelude::*;

fn start_test_server() -> ServerHandle {
    server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_capacity: 32,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port")
}

fn persons_refine_request() -> SolveRequest {
    SolveRequest {
        op: SolveOp::Refine,
        view: small_persons_view(),
        spec: SigmaSpec::Coverage,
        engine: EngineKind::Hybrid,
        k: Some(2),
        theta: Some(Ratio::new(3, 4)),
        step: None,
        max_k: None,
        time_limit: None,
        routing: None,
        tenant: None,
    }
}

#[test]
fn repeated_refine_hits_the_cache_with_byte_identical_answers() {
    let handle = start_test_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let request = persons_refine_request();
    let cold = client.solve(&request).expect("cold solve");
    assert_eq!(cold.source(), Some(Source::Solved));

    let cached = client.solve(&request).expect("cached solve");
    assert_eq!(cached.source(), Some(Source::Cache));

    // The acceptance criterion: byte-identical result payloads, compared on
    // the raw bytes the server sent, not on re-serialized values.
    let cold_bytes = cold.result_text().expect("cold result bytes");
    let cached_bytes = cached.result_text().expect("cached result bytes");
    assert_eq!(
        cold_bytes, cached_bytes,
        "cache replay must be byte-identical"
    );
    assert!(!cold_bytes.is_empty());

    // …and the cache hit is observable through the status counters.
    let status = client.status().expect("status");
    let cache = status
        .result()
        .and_then(|result| result.get("cache"))
        .expect("status carries cache counters")
        .clone();
    let hits = cache.get("hits").and_then(Json::as_int).unwrap();
    assert!(
        hits >= 1,
        "status must show at least one cache hit: {cache:?}"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn server_answers_agree_with_in_process_solving() {
    let handle = start_test_server();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let request = persons_refine_request();
    let response = client.solve(&request).expect("solve");
    let result = response.result().expect("result");

    // Solve the identical instance in-process with the same engine family.
    let engine = HybridEngine::new();
    let outcome = engine
        .refine(
            &request.view,
            &request.spec,
            request.k.unwrap(),
            request.theta.unwrap(),
        )
        .expect("in-process solve");

    match (result.get("outcome").and_then(Json::as_str), &outcome) {
        (Some("refinement"), RefineOutcome::Refinement(local)) => {
            let remote = strudel_server::protocol::refinement_from_json(
                result.get("refinement").expect("refinement payload"),
            )
            .expect("decodable refinement")
            .to_refinement()
            .expect("convertible refinement");
            // Both refinements must be valid for the instance and agree on
            // the headline numbers (engines are deterministic here, but
            // sort-internal ordering is the representation's business).
            remote
                .validate(&request.view)
                .expect("remote refinement is valid");
            local
                .validate(&request.view)
                .expect("local refinement is valid");
            assert_eq!(remote.k(), local.k());
            assert_eq!(remote.total_subjects(), local.total_subjects());
            assert_eq!(remote.min_sigma(), local.min_sigma());
        }
        (Some("infeasible"), RefineOutcome::Infeasible) => {}
        (Some("unknown"), RefineOutcome::Unknown) => {}
        (got, expected) => panic!("server said {got:?}, in-process gave {expected:?}"),
    }

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let handle = start_test_server();
    let addr = handle.addr();

    // Half the clients repeat one instance (exercising cache + coalescing),
    // half ask distinct instances (exercising parallel solving).
    let mut joins = Vec::new();
    for worker in 0..6 {
        joins.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut request = persons_refine_request();
            if worker % 2 == 1 {
                // Distinct thresholds make distinct instances.
                request.theta = Some(Ratio::new(1, 2 + worker as i128));
            }
            let response = client.solve(&request).expect("solve");
            let outcome = response
                .result()
                .and_then(|result| result.get("outcome"))
                .and_then(Json::as_str)
                .expect("every response states an outcome")
                .to_owned();
            (worker, outcome, response.result_text().unwrap().to_owned())
        }));
    }
    let mut identical_payloads = Vec::new();
    for join in joins {
        let (worker, outcome, payload) = join.join().expect("client thread");
        assert!(
            outcome == "refinement" || outcome == "infeasible" || outcome == "unknown",
            "worker {worker} got outcome {outcome}"
        );
        if worker % 2 == 0 {
            identical_payloads.push(payload);
        }
    }
    // All repeats of the identical instance received identical bytes.
    for payload in &identical_payloads[1..] {
        assert_eq!(payload, &identical_payloads[0]);
    }

    let mut client = Client::connect(addr).expect("connect");
    let status = client.status().expect("status");
    let requests = status
        .result()
        .and_then(|result| result.get("requests"))
        .expect("request counters")
        .clone();
    assert_eq!(
        requests.get("refine").and_then(Json::as_int),
        Some(6),
        "all six solve requests were counted: {requests:?}"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}
