//! Reproduction smoke tests: cheap, budgeted versions of the paper's
//! experiments asserting the qualitative *shape* of each result. The full
//! regeneration lives in `cargo run -p strudel-bench --bin experiments`.

use std::time::Duration;

use strudel_core::prelude::*;
use strudel_datagen::{
    dbpedia_persons, dbpedia_persons_scaled, mixed_drug_companies_and_sultans, person_columns,
    wordnet_nouns,
};

fn quick_engine() -> HybridEngine {
    HybridEngine::with_engines(
        GreedyEngine::new(),
        IlpEngine::with_time_limit(Duration::from_secs(3)),
    )
}

fn coarse_options() -> HighestThetaOptions {
    HighestThetaOptions {
        step: Ratio::new(1, 20),
        start: None,
    }
}

/// Figure 2/3 shape: DBpedia Persons is unstructured under Cov but moderately
/// structured under Sim; WordNet Nouns is the opposite extreme.
#[test]
fn dataset_structuredness_shape() {
    let dbpedia = dbpedia_persons();
    let wordnet = wordnet_nouns();
    let cov_dbpedia = SigmaSpec::Coverage.evaluate(&dbpedia).unwrap().to_f64();
    let sim_dbpedia = SigmaSpec::Similarity.evaluate(&dbpedia).unwrap().to_f64();
    let cov_wordnet = SigmaSpec::Coverage.evaluate(&wordnet).unwrap().to_f64();
    let sim_wordnet = SigmaSpec::Similarity.evaluate(&wordnet).unwrap().to_f64();
    assert!(cov_dbpedia < 0.6 && cov_dbpedia > 0.45);
    assert!(sim_dbpedia > 0.7);
    assert!(cov_wordnet < 0.5);
    assert!(sim_wordnet > 0.9);
    assert!(sim_wordnet > sim_dbpedia);
}

/// Figure 4a shape: the best k = 2 Cov split of DBpedia Persons separates
/// the subjects without death information ("the sort for people that are
/// alive!") from the rest, and raises the threshold above σCov(D) ≈ 0.54.
#[test]
fn dbpedia_cov_split_discovers_the_alive_sort() {
    // The scaled view has the same 64 signatures; only the counts shrink.
    let view = dbpedia_persons_scaled(1000);
    let cols = person_columns(&view);
    let result = highest_theta(
        &view,
        &SigmaSpec::Coverage,
        2,
        &quick_engine(),
        &coarse_options(),
    )
    .unwrap();
    let refinement = result
        .refinement
        .expect("feasible at the starting threshold");
    assert_eq!(refinement.k(), 2);
    assert!(result.theta.to_f64() > SigmaSpec::Coverage.evaluate(&view).unwrap().to_f64());
    let death_free = refinement.sorts.iter().any(|sort| {
        let sub = view.subset(&sort.signatures);
        sub.property_subject_count(cols.death_date) == 0
            && sub.property_subject_count(cols.death_place) == 0
    });
    assert!(
        death_free,
        "one implicit sort should contain only death-free signatures"
    );
}

/// Table 1 shape: knowing the deathPlace implies knowing nearly everything
/// else; the reverse directions are much weaker.
#[test]
fn dependency_table_shape() {
    let view = dbpedia_persons();
    let cols = person_columns(&view);
    let order = [
        cols.death_place,
        cols.birth_place,
        cols.death_date,
        cols.birth_date,
    ];
    let matrix = dependency_matrix(&view, &order);
    for cell in &matrix[0][1..4] {
        assert!(cell.to_f64() > 0.7, "deathPlace row must be high");
    }
    assert!(
        matrix[1][2].to_f64() < 0.5,
        "birthPlace → deathDate must be low"
    );
    assert!(
        matrix[3][0].to_f64() < 0.5,
        "birthDate → deathPlace must be low"
    );
}

/// Table 2 shape: givenName/surName is the most correlated pair; pairs with
/// deathPlace sit at the bottom.
#[test]
fn sym_dependency_ranking_shape() {
    let view = dbpedia_persons();
    let ranking = sym_dependency_ranking(&view);
    let top = &ranking[0];
    assert!(top.value.to_f64() > 0.99);
    assert!(
        top.property_a.contains("ivenName") || top.property_b.contains("ivenName"),
        "top pair should involve givenName, got {} / {}",
        top.property_a,
        top.property_b
    );
    let bottom = ranking.last().unwrap();
    assert!(bottom.value.to_f64() < 0.2);
}

/// Figure 6 shape: WordNet Nouns is already so uniform that a k = 2 split
/// barely improves σCov.
#[test]
fn wordnet_cov_split_improves_little() {
    let view = wordnet_nouns();
    let whole = SigmaSpec::Coverage.evaluate(&view).unwrap().to_f64();
    let result = highest_theta(
        &view,
        &SigmaSpec::Coverage,
        2,
        &quick_engine(),
        &coarse_options(),
    )
    .unwrap();
    assert!(result.theta.to_f64() >= whole - 1e-9);
    assert!(
        result.theta.to_f64() - whole < 0.3,
        "improvement {:.3} suspiciously large for a uniform dataset",
        result.theta.to_f64() - whole
    );
}

/// Section 7.4 shape: a k = 2 refinement of the drug-company/sultan mixture
/// recovers the split with perfect recall and reasonable accuracy, and the
/// generic-property-ignoring rule does at least as well.
#[test]
fn semantic_correctness_shape() {
    let dataset = mixed_drug_companies_and_sultans();
    let labels = dataset.positive_labels();
    let mut accuracies = Vec::new();
    for spec in [
        SigmaSpec::Coverage,
        SigmaSpec::CoverageIgnoring(
            strudel_rdf::vocab::GENERIC_PROPERTIES
                .iter()
                .map(|p| (*p).to_string())
                .collect(),
        ),
    ] {
        let result =
            highest_theta(&dataset.view, &spec, 2, &quick_engine(), &coarse_options()).unwrap();
        let refinement = result.refinement.expect("always feasible");
        let outcome = evaluate_binary_split(&dataset.view, &refinement, &labels);
        assert_eq!(
            outcome.true_positives
                + outcome.false_positives
                + outcome.false_negatives
                + outcome.true_negatives,
            67
        );
        assert!(
            outcome.accuracy() > 0.6,
            "accuracy {:.2}",
            outcome.accuracy()
        );
        accuracies.push(outcome.accuracy());
    }
    assert!(accuracies[1] >= accuracies[0] - 1e-9);
}
