//! Cross-crate integration tests for the strudel workspace.
//!
//! The actual tests live under `tests/tests/`; this library crate only exists
//! so the test package is a workspace member with a conventional layout.
//! Shared helpers for the integration tests are defined here.

/// Builds a small signature view used by several integration tests: a
/// "persons"-like sort where everyone has a name, most have birth data and a
/// minority have death data.
pub fn small_persons_view() -> strudel_rdf::signature::SignatureView {
    strudel_rdf::signature::SignatureView::from_counts(
        vec![
            "http://example.org/name".into(),
            "http://example.org/birthDate".into(),
            "http://example.org/birthPlace".into(),
            "http://example.org/deathDate".into(),
        ],
        vec![
            (vec![0], 30),
            (vec![0, 1], 25),
            (vec![0, 1, 2], 20),
            (vec![0, 1, 2, 3], 10),
            (vec![0, 3], 3),
        ],
    )
    .expect("valid signature view")
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_view_is_well_formed() {
        let view = super::small_persons_view();
        assert_eq!(view.signature_count(), 5);
        assert_eq!(view.subject_count(), 88);
    }
}
